(* QCheck generators shared by the property-based suites. *)

module Label = Ssd.Label
module Tree = Ssd.Tree
module Graph = Ssd.Graph
module Q = QCheck2.Gen

let small_symbol = Q.oneofl [ "a"; "b"; "c"; "movie"; "title"; "x" ]

let label : Label.t Q.t =
  Q.oneof
    [
      Q.map Label.int (Q.int_range (-50) 50);
      Q.map Label.float (Q.oneofl [ 0.0; 1.5; -2.25; 1e6 ]);
      Q.map Label.str (Q.oneofl [ ""; "hi"; "Casablanca"; "a b"; "quo\"te"; "\\slash"; "tab\there" ]);
      Q.map Label.bool Q.bool;
      Q.map Label.sym small_symbol;
    ]

(* Trees: size-bounded, branching limited so canonical forms stay small. *)
let tree : Tree.t Q.t =
  let open Q in
  sized
  @@ fix (fun self n ->
         if n <= 0 then pure Tree.empty
         else
           let* width = int_range 0 (min 3 n) in
           let* edges = list_repeat width (pair label (self (n / 2))) in
           pure (Tree.of_edges edges))

(* Rooted graphs, possibly cyclic: n nodes, random labeled edges among
   them, node 0 the root, with a spine making most nodes reachable. *)
let graph : Graph.t Q.t =
  let open Q in
  let* n = int_range 1 12 in
  let* spine = list_repeat (n - 1) label in
  let* extra = int_range 0 (2 * n) in
  let* edges = list_repeat extra (triple (int_range 0 (n - 1)) label (int_range 0 (n - 1))) in
  pure
    (let b = Graph.Builder.create () in
     for _ = 1 to n do
       ignore (Graph.Builder.add_node b)
     done;
     Graph.Builder.set_root b 0;
     List.iteri (fun i l -> Graph.Builder.add_edge b i l (i + 1)) spine;
     List.iter (fun (u, l, v) -> Graph.Builder.add_edge b u l v) edges;
     Graph.gc (Graph.Builder.finish b))

(* Acyclic rooted graphs (DAGs): edges only point to higher ids. *)
let dag : Graph.t Q.t =
  let open Q in
  let* n = int_range 1 12 in
  let* spine = list_repeat (n - 1) label in
  let* extra = int_range 0 (2 * n) in
  let* edges =
    list_repeat extra (triple (int_range 0 (n - 1)) label (int_range 0 (n - 1)))
  in
  pure
    (let b = Graph.Builder.create () in
     for _ = 1 to n do
       ignore (Graph.Builder.add_node b)
     done;
     Graph.Builder.set_root b 0;
     List.iteri (fun i l -> Graph.Builder.add_edge b i l (i + 1)) spine;
     List.iter
       (fun (u, l, v) -> if u < v then Graph.Builder.add_edge b u l v)
       edges;
     Graph.gc (Graph.Builder.finish b))

(* Regexes over a small symbol alphabet plus a few predicates. *)
let regex : Ssd_automata.Regex.t Q.t =
  let module R = Ssd_automata.Regex in
  let module P = Ssd_automata.Lpred in
  let open Q in
  let atom =
    oneof
      [
        Q.map (fun s -> R.Atom (P.Exact (Label.Sym s))) small_symbol;
        pure (R.Atom P.Any);
        Q.map (fun s -> R.Atom (P.Not (P.Exact (Label.Sym s)))) small_symbol;
        pure (R.Atom (P.Of_type "symbol"));
        pure R.Eps;
      ]
  in
  sized_size (int_range 0 8)
  @@ fix (fun self n ->
         if n <= 1 then atom
         else
           oneof
             [
               atom;
               Q.map2 (fun a b -> R.Seq (a, b)) (self (n / 2)) (self (n / 2));
               Q.map2 (fun a b -> R.Alt (a, b)) (self (n / 2)) (self (n / 2));
               Q.map (fun a -> R.Star a) (self (n / 2));
               Q.map (fun a -> R.Plus a) (self (n / 2));
               Q.map (fun a -> R.Opt a) (self (n / 2));
             ])

(* Words over the same small alphabet (so regex matches are non-trivial). *)
let word : Label.t list Q.t =
  Q.list_size (Q.int_range 0 6) (Q.map Label.sym small_symbol)

(* JSON documents. *)
let json : Ssd.Json.t Q.t =
  let module J = Ssd.Json in
  let open Q in
  let scalar =
    oneof
      [
        pure J.Null;
        Q.map (fun b -> J.Bool b) bool;
        Q.map (fun i -> J.Int i) (int_range (-1000) 1000);
        Q.map (fun s -> J.String s) (oneofl [ ""; "x"; "hello world"; "\"q\"" ]);
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           oneof
             [
               scalar;
               Q.map (fun l -> J.List l) (list_size (int_range 0 4) (self (n / 2)));
               Q.map
                 (fun kvs ->
                   (* JSON objects need distinct keys. *)
                   let seen = Hashtbl.create 4 in
                   J.Obj
                     (List.filter
                        (fun (k, _) ->
                          if Hashtbl.mem seen k then false
                          else begin
                            Hashtbl.add seen k ();
                            true
                          end)
                        kvs))
                 (list_size (int_range 0 4)
                    (pair (oneofl [ "k1"; "k2"; "key"; "nested" ]) (self (n / 2))));
             ])

(* Small random relations for the RA algebra laws. *)
let relation attrs : Relstore.Relation.t Q.t =
  let open Q in
  let arity = List.length attrs in
  let* rows = list_size (int_range 0 8) (list_repeat arity label) in
  pure (Relstore.Relation.of_rows attrs (List.map Array.of_list rows))

(* Literal symbol paths over the small alphabet (for the differential
   path-query suites). *)
let sym_path : Label.t list Q.t =
  Q.list_size (Q.int_range 1 3) (Q.map Label.sym small_symbol)

(* A smaller regex than {!regex}: exact-symbol and wildcard atoms only,
   so the same path query can be phrased in Lorel and datalog. *)
let small_regex : Ssd_automata.Regex.t Q.t =
  let module R = Ssd_automata.Regex in
  let module P = Ssd_automata.Lpred in
  let open Q in
  let atom =
    oneof
      [
        Q.map (fun s -> R.Atom (P.Exact (Label.Sym s))) small_symbol;
        pure (R.Atom P.Any);
      ]
  in
  sized_size (int_range 1 4)
  @@ fix (fun self n ->
         if n <= 1 then atom
         else
           oneof
             [
               atom;
               Q.map2 (fun a b -> R.Seq (a, b)) (self (n / 2)) (self (n / 2));
               Q.map2 (fun a b -> R.Alt (a, b)) (self (n / 2)) (self (n / 2));
               Q.map (fun a -> R.Star a) (self (n / 2));
             ])

(* Recursion-free {!small_regex}: no [Star], so a regex step visits a
   bounded frontier and the static cardinality estimate is a true upper
   bound — the estimate-vs-actual property needs this subset. *)
let small_regex_norec : Ssd_automata.Regex.t Q.t =
  let module R = Ssd_automata.Regex in
  let module P = Ssd_automata.Lpred in
  let open Q in
  let atom =
    oneof
      [
        Q.map (fun s -> R.Atom (P.Exact (Label.Sym s))) small_symbol;
        pure (R.Atom P.Any);
      ]
  in
  sized_size (int_range 1 4)
  @@ fix (fun self n ->
         if n <= 1 then atom
         else
           oneof
             [
               atom;
               Q.map2 (fun a b -> R.Seq (a, b)) (self (n / 2)) (self (n / 2));
               Q.map2 (fun a b -> R.Alt (a, b)) (self (n / 2)) (self (n / 2));
             ])

(* UnQL select queries, built directly as ASTs: one or two generators
   (the second ranging over the first binder), steps mixing literal
   labels, label binders and regexes, and 0–2 conditions.  Tree binders
   are "t0"/"t1" and label binders "lu"/"lv" — disjoint pools, so a name
   is never both, and condition atoms avoid the tree pool (an unbound
   name in a condition just denotes a symbol literal, which is safe). *)
let unql_query_with (regex : Ssd_automata.Regex.t Q.t) : Unql.Ast.expr Q.t =
  let module A = Unql.Ast in
  let open Q in
  let step =
    frequency
      [
        (3, Q.map (fun s -> A.Slit (A.Llit (Label.Sym s))) small_symbol);
        (2, Q.map (fun x -> A.Sbind x) (oneofl [ "lu"; "lv" ]));
        (2, Q.map (fun r -> A.Sregex (r, None)) regex);
      ]
  in
  let steps = list_size (int_range 1 2) step in
  let atom =
    oneof
      [
        Q.map (fun s -> A.Aname s) (oneofl [ "lu"; "lv"; "a"; "b" ]);
        Q.map (fun s -> A.Alit (Label.Sym s)) small_symbol;
        Q.map (fun i -> A.Alit (Label.Int i)) (int_range (-3) 3);
      ]
  in
  let cond =
    oneof
      [
        Q.map3
          (fun op a b -> A.Ccmp (op, a, b))
          (oneofl [ A.Eq; A.Neq; A.Lt; A.Le ])
          atom atom;
        Q.map2 (fun t a -> A.Cistype (t, a)) (oneofl [ "int"; "symbol"; "string" ]) atom;
        Q.map2 (fun a p -> A.Cstarts (a, p)) atom (oneofl [ "a"; "m"; "ti" ]);
      ]
  in
  let* g1 = steps in
  let* with_second = bool in
  let* g2 = steps in
  let* conds = list_size (int_range 0 2) cond in
  let tvar = if with_second then "t1" else "t0" in
  let clauses =
    (A.Gen (A.Pedges [ (g1, A.Pbind "t0") ], A.Db)
     ::
     (if with_second then [ A.Gen (A.Pedges [ (g2, A.Pbind "t1") ], A.Var "t0") ] else []))
    @ List.map (fun c -> A.Where c) conds
  in
  pure (A.Select (A.Tree [ (A.Llit (Label.sym "r"), A.Var tvar) ], clauses))

let unql_query : Unql.Ast.expr Q.t = unql_query_with small_regex

(* Recursion-free queries (regex steps without [Star]) for the
   cardinality upper-bound property. *)
let unql_query_norec : Unql.Ast.expr Q.t = unql_query_with small_regex_norec

(* Corrupted codec inputs: a valid encoding with a seeded mutation —
   truncation, bit flips, or a byte stomp.  Decoding one must either
   succeed or raise [Ssd_storage.Codec.Corrupt]; anything else (generic
   Failure, Invalid_argument, out-of-memory array sizes) is a bug. *)
let corrupted_encoding : bytes Q.t =
  let open Q in
  let* g = graph in
  let data = Ssd_storage.Codec.encode g in
  let n = Bytes.length data in
  let* choice = int_range 0 2 in
  match choice with
  | 0 ->
    let* k = int_range 0 (n - 1) in
    pure (Bytes.sub data 0 k)
  | 1 ->
    let* flips = list_size (int_range 1 4) (pair (int_range 0 (n - 1)) (int_range 0 7)) in
    let b = Bytes.copy data in
    List.iter
      (fun (i, bit) -> Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor (1 lsl bit)))
      flips;
    pure b
  | _ ->
    let* i = int_range 0 (n - 1) in
    let* v = int_range 0 255 in
    let b = Bytes.copy data in
    Bytes.set_uint8 b i v;
    pure b

(* A fault-plan spec for the distributed evaluator, in the CLI grammar.
   Probabilities stay below 1 so every run still quiesces. *)
let fault_spec : string Q.t =
  let open Q in
  let* seed = int_range 0 999 in
  let* drop = oneofl [ "0"; "0.1"; "0.3"; "0.5" ] in
  let* dup = oneofl [ "0"; "0.1" ] in
  let* reorder = oneofl [ "0"; "0.2" ] in
  let* ckpt = int_range 1 3 in
  let* backoff = oneofl [ ""; ",backoff:exp"; ",backoff:fixed@2" ] in
  let* crashes =
    list_size (int_range 0 2) (triple (int_range 0 3) (int_range 1 4) (int_range 1 2))
  in
  let crash_s =
    String.concat ""
      (List.map (fun (s, r, d) -> Printf.sprintf ",crash:%d@%d+%d" s r d) crashes)
  in
  pure
    (Printf.sprintf "seed:%d,drop:%s,dup:%s,reorder:%s,ckpt:%d%s%s" seed drop dup
       reorder ckpt backoff crash_s)

(* Wrap a QCheck2 property as an alcotest case. *)
let qtest name ?(count = 100) ?print gen prop =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick
    (QCheck2.Test.make ~name ~count ?print gen prop)
