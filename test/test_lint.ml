(* The static analyzer: one golden case per diagnostic code, the
   soundness property the hygiene pass promises (a query that lints with
   zero errors evaluates without raising), and semantics preservation of
   lint-informed dead-path pruning. *)

module Q = QCheck2.Gen
module A = Unql.Ast
module L = Ssd_lint
module Diag = Ssd_diag
module Graph = Ssd.Graph
module Label = Ssd.Label
module Regex = Ssd_automata.Regex

let figure1 = Ssd_workload.Movies.figure1 ()

(* One node with a self-loop: the smallest cyclic database. *)
let loop_db =
  let b = Graph.Builder.create () in
  let n = Graph.Builder.add_node b in
  Graph.Builder.set_root b n;
  Graph.Builder.add_edge b n (Label.sym "a") n;
  Graph.Builder.finish b

let unql ?db src = L.check_src ~lang:L.Unql ?db src
let lorel ?db src = L.check_src ~lang:L.Lorel ?db src
let datalog src = L.check_src ~lang:L.Datalog src

let codes r = List.map (fun (d : Diag.t) -> d.Diag.code) r.L.diags

let expect code r =
  Alcotest.(check bool)
    (Printf.sprintf "reports %s (got: %s)" code (String.concat "," (codes r)))
    true
    (List.mem code (codes r))

(* ------------------------------------------------------------------ *)
(* Golden cases                                                        *)
(* ------------------------------------------------------------------ *)

let test_syntax () =
  expect "SSD001" (unql "select where");
  expect "SSD002" (lorel "select");
  expect "SSD003" (datalog "p(?X :-")

let test_paths () =
  expect "SSD101" (unql ~db:figure1 {|select {r: \t} where {zzz: \t} <- DB|});
  expect "SSD102" (unql ~db:figure1 {|select {r: \t} where {entry.movie.zzz: \t} <- DB|});
  (* a literally-void regex is not expressible in the concrete syntax;
     check the AST-level analysis *)
  let q =
    A.Select
      ( A.Tree [ (A.Llit (Label.sym "r"), A.Var "t") ],
        [ A.Gen (A.Pedges [ ([ A.Sregex (Regex.Void, None) ], A.Pbind "t") ], A.Db) ] )
  in
  let r = L.Unql_lint.check q in
  Alcotest.(check bool) "reports SSD103" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "SSD103") r.L.Unql_lint.diags)

let test_datalog_safety () =
  expect "SSD201" (datalog "bad(?X) :- edge(?A, ?B, ?C).");
  expect "SSD202" (datalog "q(?X) :- root(?X). p(?X) :- root(?X), not q(?Z).");
  expect "SSD203" (datalog "p(?X) :- root(?X), ?Z > 3.");
  expect "SSD210" (datalog "p(?X) :- root(?X). p(?Y) :- edge(?X, ?L, ?Y), not p(?X).");
  expect "SSD211" (datalog "p(?X) :- nosuch(?X).");
  expect "SSD212" (datalog "p(?X) :- edge(?X, ?Y).")

let test_unql_hygiene () =
  expect "SSD301" (unql {|select {r: {}} where {a: \t} <- DB|});
  expect "SSD302" (unql {|select {r: \t} where {a: \t} <- DB, {b: \t} <- DB|});
  expect "SSD303" (unql {|select {r: u} where {a: \t} <- DB|});
  expect "SSD304" (unql {|select {r: {}} where {a: \t} <- DB, t = movie|});
  expect "SSD304" (unql {|select {r: \u} where {a: \t} <- DB, {\t.b: \u} <- DB|});
  expect "SSD305" (unql "f(DB)");
  expect "SSD306" (unql "let sfun f({a: t}) = f(DB) in f(DB)");
  expect "SSD307" (unql "let sfun f({a: t}) = x in f(DB)");
  expect "SSD308" (unql "let sfun f({<a*>: t}) = {} in f(DB)");
  expect "SSD309" (unql "let sfun f({a: t}) = let sfun f({b: u}) = {} in {} in f(DB)");
  expect "SSD310" (unql ~db:loop_db {|let sfun f({\l: t}) = {l: f(t)} in f(DB)|});
  (* ... but re-emitting on acyclic data is fine: no warning.
     (figure1 itself is cyclic — movies and actors reference each other —
     so build a little tree.) *)
  let tree_db = Ssd.Syntax.parse_graph "{a: {b: {}}}" in
  let r = unql ~db:tree_db {|let sfun f({\l: t}) = {l: f(t)} in f(DB)|} in
  Alcotest.(check bool) "no SSD310 on a tree" false (List.mem "SSD310" (codes r))

let test_uncal_markers () =
  let module U = Unql.Uncal in
  let d311 = L.check_uncal (U.label (Label.sym "a") (U.mark "y")) in
  Alcotest.(check bool) "SSD311" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "SSD311") d311);
  let d312 = L.check_uncal (U.rename_inputs (fun _ -> "z") U.empty) in
  Alcotest.(check bool) "SSD312" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "SSD312") d312);
  Alcotest.(check int) "empty is clean" 0 (List.length (L.check_uncal U.empty))

let test_lorel () =
  expect "SSD401" (lorel "select X.a from DB.b Y");
  expect "SSD402" (lorel ~db:figure1 "select X.title from DB.entry.zzz X");
  expect "SSD403" (lorel "select X.title from DB.entry X, DB.entry X")

(* Cardinality / cost codes (SSD25x): one golden case per code, each on
   the smallest database that triggers it. *)
let card_codes (c : L.Card.t) = List.map (fun (d : Diag.t) -> d.Diag.code) c.L.Card.diags

let expect_card code c =
  Alcotest.(check bool)
    (Printf.sprintf "reports %s (got: %s)" code (String.concat "," (card_codes c)))
    true
    (List.mem code (card_codes c))

let reject_card code c =
  Alcotest.(check bool)
    (Printf.sprintf "no %s (got: %s)" code (String.concat "," (card_codes c)))
    false
    (List.mem code (card_codes c))

let tree_db = Ssd.Syntax.parse_graph "{a: {b: {}}}"

let test_cardinality () =
  let ann g = Ssd_schema.Annotated.build g in
  let cost ?declared ~lang db src =
    ignore declared;
    L.check_cost ~lang ~annotated:(ann db) ?declared src
  in
  (* SSD250: statically empty — a path the DataGuide proves dead *)
  expect_card "SSD250"
    (cost ~lang:L.Unql figure1 {|select {r: \t} where {entry.zzz: \t} <- DB|});
  expect_card "SSD250" (cost ~lang:L.Lorel tree_db "select X from DB.zzz X");
  expect_card "SSD250"
    (cost ~lang:L.Datalog Graph.empty "p(?X) :- edge(?X, ?L, ?Y).");
  (* SSD251: always singleton *)
  expect_card "SSD251"
    (cost ~lang:L.Unql tree_db {|select {r: \t} where {a.b: \t} <- DB|});
  expect_card "SSD251" (cost ~lang:L.Lorel tree_db "select X.b from DB.a X");
  (* SSD252: the syntactic conjunct order builds a cross product *)
  let movies = Ssd_workload.Movies.generate ~seed:42 ~n_entries:30 () in
  expect_card "SSD252"
    (cost ~lang:L.Unql movies
       {|select {r: u} where {\a: \t} <- DB, {<_*.zzz>: \u} <- DB|});
  expect_card "SSD252"
    (cost ~lang:L.Datalog movies "p(?X) :- edge(?X, ?L, ?Y), root(?X).");
  (* ... and the planned order is cheaper than the syntactic one *)
  let c =
    cost ~lang:L.Unql movies {|select {r: u} where {\a: \t} <- DB, {<_*.zzz>: \u} <- DB|}
  in
  Alcotest.(check bool) "planned < syntax" true
    (c.L.Card.cost_planned < c.L.Card.cost_syntax);
  (* SSD253: recursion over a cyclic region *)
  expect_card "SSD253"
    (cost ~lang:L.Unql loop_db {|select {r: \t} where {<a*>: \t} <- DB|});
  expect_card "SSD253" (cost ~lang:L.Lorel loop_db "select X from DB.# X");
  (* ... but recursion over a tree is bounded *)
  reject_card "SSD253"
    (cost ~lang:L.Unql tree_db {|select {r: \t} where {<a*>: \t} <- DB|})

let test_result_schema () =
  let ann = Ssd_schema.Annotated.build tree_db in
  let q = Unql.Parser.parse {|select {r: \t} where {a: \t} <- DB|} in
  (* the select grafts the guide region below "a" under label r: {r: {b: {}}} *)
  let good = Ssd_schema.Gschema.parse "{r: {b: {}}}" in
  reject_card "SSD254" (L.Card.check_unql ann ~declared:good q);
  let bad = Ssd_schema.Gschema.parse "{r: {c: #int}}" in
  expect_card "SSD254" (L.Card.check_unql ann ~declared:bad q)

(* Runtime codes: the typed exceptions carry the same codes the registry
   documents. *)
let test_runtime_codes () =
  let code_of f = try ignore (f ()); "none" with Diag.Fail d -> d.Diag.code in
  Alcotest.(check string) "SSD520" "SSD520"
    (code_of (fun () -> Relstore.Relation.create [ "a"; "a" ]));
  Alcotest.(check string) "SSD530" "SSD530"
    (code_of (fun () ->
         Unql.Views.(define ~name:"v" "DB" (define ~name:"v" "DB" empty))));
  let runtime_code f = try ignore (f ()); "none" with
    | Unql.Eval.Runtime_error d -> d.Diag.code
  in
  Alcotest.(check string) "SSD303 at runtime" "SSD303"
    (runtime_code (fun () -> Unql.Eval.eval ~db:figure1 (A.Var "u")))

let test_registry () =
  List.iter
    (fun (code, _, _) ->
      Alcotest.(check bool) (code ^ " described") true (Diag.describe code <> None))
    Diag.codes;
  (* every code this suite exercises is registered *)
  List.iter
    (fun c -> Alcotest.(check bool) (c ^ " registered") true (Diag.describe c <> None))
    [ "SSD101"; "SSD210"; "SSD310"; "SSD403"; "SSD530" ]

let test_report_plumbing () =
  let r = unql ~db:figure1 {|select {t: \T} where {entry.movie.title: \T} <- DB|} in
  Alcotest.(check int) "no diags" 0 (List.length r.L.diags);
  Alcotest.(check int) "one path" 1 r.L.paths_checked;
  Alcotest.(check bool) "title reachable" true
    (List.mem (Label.sym "title") r.L.reachable_labels);
  (* the fingerprint is the cache's: a following cache lookup can reuse it *)
  let q = Unql.Parser.parse {|select {t: \T} where {entry.movie.title: \T} <- DB|} in
  Alcotest.(check bool) "fingerprint matches cache" true
    (r.L.fingerprint = Some (Unql.Cache.query_fingerprint q))

let test_schema_target () =
  let schema = Ssd_schema.Gschema.parse "{entry: {movie: {title: #string}}}" in
  let r =
    L.check_src ~lang:L.Unql ~target:(L.Schema schema)
      {|select {r: \t} where {entry.movie.year: \t} <- DB|}
  in
  expect "SSD102" r;
  let ok =
    L.check_src ~lang:L.Unql ~target:(L.Schema schema)
      {|select {r: \t} where {entry.movie.title: \t} <- DB|}
  in
  Alcotest.(check int) "live under schema" 0 ok.L.dead_paths

let test_prune () =
  let guide = Ssd_schema.Dataguide.build figure1 in
  let q =
    Unql.Parser.parse
      {|select {r: \t} where {entry.movie.zzz: \t} <- DB|}
  in
  let q', n = L.prune (L.Guide guide) q in
  Alcotest.(check int) "one select pruned" 1 n;
  Alcotest.(check bool) "result empty" true
    (Ssd.Bisim.equal (Unql.Eval.eval ~db:figure1 q') Graph.empty)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let unql_errors (r : L.Unql_lint.report) = Diag.count Diag.Error r.L.Unql_lint.diags

let print_pair (g, q) =
  Printf.sprintf "query: %s\ndb: %s" (Unql.Pretty.expr_to_string q) (Graph.to_string g)

let props =
  [
    Gen.qtest "lint-clean queries do not raise (figure1)" ~count:150
      ~print:(fun q -> Unql.Pretty.expr_to_string q)
      Gen.unql_query
      (fun q ->
        let r = L.Unql_lint.check ~db:figure1 q in
        unql_errors r > 0
        ||
        match Unql.Eval.eval ~db:figure1 q with
        | _ -> true
        | exception (Unql.Eval.Runtime_error _ | A.Ill_formed _) -> false);
    Gen.qtest "lint-clean queries do not raise (random graphs)" ~count:150
      ~print:print_pair
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let r = L.Unql_lint.check ~db:g q in
        unql_errors r > 0
        ||
        match Unql.Eval.eval ~db:g q with
        | _ -> true
        | exception (Unql.Eval.Runtime_error _ | A.Ill_formed _) -> false);
    Gen.qtest "prune preserves semantics" ~count:100 ~print:print_pair
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let guide = Ssd_schema.Dataguide.build g in
        let q', _ = L.prune (L.Guide guide) q in
        Ssd.Bisim.equal (Unql.Eval.eval ~db:g q) (Unql.Eval.eval ~db:g q'));
    (* The soundness contract of the estimator: for recursion-free
       queries the static estimate upper-bounds the actual number of
       result bindings (each environment emits exactly one top-level
       edge of the generated queries' head, so edges = environments). *)
    Gen.qtest "estimate upper-bounds actual (recursion-free)" ~count:150
      ~print:print_pair
      (Q.pair Gen.graph Gen.unql_query_norec)
      (fun (g, q) ->
        let r = L.Unql_lint.check ~db:g q in
        unql_errors r > 0
        ||
        let card = L.Card.check_unql (Ssd_schema.Annotated.build g) q in
        match card.L.Card.est_total with
        | None -> true
        | Some est ->
          let result = Unql.Eval.eval ~db:g q in
          let actual = List.length (Graph.labeled_succ result (Graph.root result)) in
          est >= float_of_int actual);
  ]

let tests =
  [
    Alcotest.test_case "syntax codes" `Quick test_syntax;
    Alcotest.test_case "path satisfiability codes" `Quick test_paths;
    Alcotest.test_case "datalog safety codes" `Quick test_datalog_safety;
    Alcotest.test_case "unql hygiene codes" `Quick test_unql_hygiene;
    Alcotest.test_case "uncal marker codes" `Quick test_uncal_markers;
    Alcotest.test_case "lorel codes" `Quick test_lorel;
    Alcotest.test_case "cardinality codes" `Quick test_cardinality;
    Alcotest.test_case "result-schema subsumption" `Quick test_result_schema;
    Alcotest.test_case "runtime exception codes" `Quick test_runtime_codes;
    Alcotest.test_case "code registry is total" `Quick test_registry;
    Alcotest.test_case "report plumbing" `Quick test_report_plumbing;
    Alcotest.test_case "schema-automaton target" `Quick test_schema_target;
    Alcotest.test_case "dead-path pruning" `Quick test_prune;
  ]
  @ props
