(* CLI-level jobs invariance: `ssdql query --jobs 4` output (answer and
   stats) must be byte-identical to `--jobs 1` once timer values — the
   only thing allowed to vary — are masked out.  Driven by dune rules
   that capture real CLI runs on figure1 and a generated web graph. *)

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn > 0 && at 0

(* Timers are wall-clock and may legitimately differ across jobs. *)
let mask lines = List.filter (fun l -> not (contains_sub l "_ns")) lines

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let compare_pair name seq_path par_path =
  let seq = read_lines seq_path and par = read_lines par_path in
  if seq = [] then fail "%s: sequential capture is empty" name;
  if not (List.exists (fun l -> contains_sub l "unql.") seq) then
    fail "%s: no unql.* stats in capture" name;
  let ms = mask seq and mp = mask par in
  if List.length ms = List.length seq then
    fail "%s: no timer lines found — masking is vacuous" name;
  if ms <> mp then begin
    List.iteri
      (fun i (a, b) ->
        if a <> b then Printf.eprintf "%s: line %d differs:\n  jobs=1: %s\n  jobs=4: %s\n" name i a b)
      (List.combine ms mp |> fun l -> if List.length ms = List.length mp then l else []);
    fail "%s: --jobs 4 output differs from --jobs 1" name
  end

let () =
  match Sys.argv with
  | [| _; fig_seq; fig_par; web_seq; web_par |] ->
    compare_pair "figure1" fig_seq fig_par;
    compare_pair "webgraph" web_seq web_par;
    print_endline "check_par: --jobs 4 byte-identical to --jobs 1 (timers masked)"
  | _ -> fail "usage: check_par FIG_J1 FIG_J4 WEB_J1 WEB_J4"
