(* OpenMetrics exposition: golden output for a known registry, the
   round-trip property (every emitted line re-parses), and the scrape
   invariants a real Prometheus would rely on — counters monotone across
   successive scrapes under a concurrent workload, cumulative buckets
   that never tear. *)

module Metrics = Ssd_obs.Metrics
module Export = Ssd_obs.Export

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let lines_of s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let sanitize () =
  Alcotest.(check string) "dots become underscores" "ssd_serve_requests"
    (Export.sanitize "serve.requests");
  Alcotest.(check string) "already-clean names keep chars" "ssd_wal_bytes"
    (Export.sanitize "wal_bytes");
  Alcotest.(check string) "odd chars collapse to underscore" "ssd_a_b_c"
    (Export.sanitize "a-b c");
  Alcotest.(check string) "leading digit is guarded" "ssd__1x"
    (Export.sanitize "1x")

let split_and_escape () =
  let base, raw = Export.split_labels {|serve.tenant.requests{tenant="a"}|} in
  Alcotest.(check string) "base name" "serve.tenant.requests" base;
  Alcotest.(check string) "raw label text (braces stripped)" {|tenant="a"|} raw;
  let base2, raw2 = Export.split_labels "serve.requests" in
  Alcotest.(check string) "no labels: base is the name" "serve.requests" base2;
  Alcotest.(check string) "no labels: empty raw" "" raw2;
  let rendered = Export.label_set [ ("k", "a\"b\\c\nd") ] in
  Alcotest.(check string) "escaping backslash, quote, newline"
    {|{k="a\"b\\c\nd"}|} rendered

let golden () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter ~registry:r "serve.requests") 7;
  Metrics.set (Metrics.gauge ~registry:r "store.dirty_pages") 3.;
  Metrics.record_ns (Metrics.timer ~registry:r "eval.time") 1500.;
  let h = Metrics.histogram ~registry:r "serve.latency_ns" in
  List.iter (Metrics.observe h) [ 1.; 3.; 100. ];
  let text = Export.openmetrics (Metrics.snapshot r) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition contains " ^ needle) true
        (contains text needle))
    [
      "# TYPE ssd_serve_requests_total counter";
      "ssd_serve_requests_total 7";
      "# TYPE ssd_store_dirty_pages gauge";
      "ssd_store_dirty_pages 3";
      "# TYPE ssd_eval_time summary";
      "ssd_eval_time_count 1";
      "ssd_eval_time_sum 1500";
      "# TYPE ssd_serve_latency_ns histogram";
      {|ssd_serve_latency_ns_bucket{le="1"} 1|};
      {|ssd_serve_latency_ns_bucket{le="+Inf"} 3|};
      "ssd_serve_latency_ns_sum 104";
      "ssd_serve_latency_ns_count 3";
    ];
  (* cumulative buckets: each le bound's count includes the smaller ones *)
  Alcotest.(check bool) "le=4 bucket is cumulative" true
    (contains text {|ssd_serve_latency_ns_bucket{le="4"} 2|});
  (* terminator present, exactly once, last *)
  let ls = lines_of text in
  Alcotest.(check string) "ends with # EOF" "# EOF" (List.nth ls (List.length ls - 1));
  Alcotest.(check int) "single EOF" 1
    (List.length (List.filter (( = ) "# EOF") ls))

let labeled_families_merge () =
  let r = Metrics.create () in
  let t tenant =
    Metrics.counter ~registry:r
      ("serve.tenant.requests" ^ Export.label_set [ ("tenant", tenant) ])
  in
  Metrics.add (t "alice") 2;
  Metrics.add (t "bob") 5;
  let text = Export.openmetrics (Metrics.snapshot r) in
  let ls = lines_of text in
  Alcotest.(check int) "one TYPE line for the family" 1
    (List.length
       (List.filter
          (( = ) "# TYPE ssd_serve_tenant_requests_total counter")
          ls));
  match Export.parse text with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    let samples =
      List.filter
        (fun s -> s.Export.family = "ssd_serve_tenant_requests_total")
        (Export.samples parsed)
    in
    Alcotest.(check int) "two labeled series" 2 (List.length samples);
    let value_of tenant =
      match
        List.find_opt (fun s -> s.Export.labels = [ ("tenant", tenant) ]) samples
      with
      | Some s -> s.Export.value
      | None -> Alcotest.fail ("missing tenant series " ^ tenant)
    in
    Alcotest.(check (float 0.0)) "alice" 2. (value_of "alice");
    Alcotest.(check (float 0.0)) "bob" 5. (value_of "bob");
    Alcotest.(check (float 0.0)) "counter_total sums the series" 7.
      (Export.counter_total parsed "ssd_serve_tenant_requests_total")

let round_trip () =
  (* Everything we emit — on a registry with every instrument kind,
     awkward label values included — must re-parse line by line. *)
  let r = Metrics.create () in
  Metrics.incr
    (Metrics.counter ~registry:r
       ("serve.tenant.bytes" ^ Export.label_set [ ("tenant", "we\"ird\\t\nen") ]));
  Metrics.set (Metrics.gauge ~registry:r "store.clean") 1.;
  Metrics.record_ns (Metrics.timer ~registry:r "t.t") 10.;
  Metrics.observe (Metrics.histogram ~registry:r "h.h") 9.;
  let text = Export.openmetrics (Metrics.snapshot r) in
  List.iter
    (fun l ->
      match Export.parse_line l with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "line %S: %s" l e))
    (lines_of text);
  (match Export.parse text with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* the escaped label value survives the round trip *)
  match Export.parse text with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    let s =
      List.find
        (fun s -> s.Export.family = "ssd_serve_tenant_bytes_total")
        (Export.samples parsed)
    in
    Alcotest.(check (list (pair string string))) "label value unescaped"
      [ ("tenant", "we\"ird\\t\nen") ]
      s.Export.labels

let parse_rejects_garbage () =
  (match Export.parse_line "ssd_x_total" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "value-less sample accepted");
  (match Export.parse_line "ssd_x_total notanumber" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric value accepted");
  (match Export.parse_line "# TYPE ssd_x frobnicator" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown TYPE kind accepted");
  match Export.parse "ssd_ok 1\nssd_bad" with
  | Error e -> Alcotest.(check bool) "error names the bad line" true (contains e "ssd_bad")
  | Ok _ -> Alcotest.fail "document with a bad line accepted"

(* The scrape invariants under a concurrent workload: counters never go
   backwards between successive scrapes, and within every single scrape
   the histogram's +Inf bucket equals its _count (a torn snapshot would
   break that first). *)
let monotone_under_load () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "load.requests" in
  let h = Metrics.histogram ~registry:r "load.latency" in
  let stop = Atomic.make false in
  let worker =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          incr i;
          Metrics.incr c;
          Metrics.observe h (float_of_int (1 + (!i mod 1000)));
          if !i mod 64 = 0 then Domain.cpu_relax ()
        done)
  in
  let prev = ref 0. in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join worker)
    (fun () ->
      for _scrape = 1 to 50 do
        let text = Export.openmetrics (Metrics.snapshot r) in
        match Export.parse text with
        | Error e -> Alcotest.fail e
        | Ok parsed ->
          let total = Export.counter_total parsed "ssd_load_requests_total" in
          if total < !prev then
            Alcotest.fail
              (Printf.sprintf "counter went backwards: %g -> %g" !prev total);
          prev := total;
          let samples = Export.samples parsed in
          let bucket_inf =
            List.find_opt
              (fun s ->
                s.Export.family = "ssd_load_latency_bucket"
                && s.Export.labels = [ ("le", "+Inf") ])
              samples
          and count =
            List.find_opt
              (fun s -> s.Export.family = "ssd_load_latency_count")
              samples
          in
          (match (bucket_inf, count) with
          | Some b, Some n ->
            if b.Export.value <> n.Export.value then
              Alcotest.fail
                (Printf.sprintf "torn histogram: +Inf=%g count=%g"
                   b.Export.value n.Export.value)
          | _ -> Alcotest.fail "histogram families missing under load");
          (* cumulative buckets are monotone within the scrape *)
          let buckets =
            List.filter
              (fun s -> s.Export.family = "ssd_load_latency_bucket")
              samples
          in
          ignore
            (List.fold_left
               (fun acc s ->
                 if s.Export.value < acc then
                   Alcotest.fail "cumulative buckets decreased";
                 s.Export.value)
               0. buckets)
      done)

let json_matches_snapshot () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter ~registry:r "a.c") 4;
  let doc = Export.json (Metrics.snapshot r) in
  match Ssd.Json.parse doc with
  | Ssd.Json.Obj kvs ->
    Alcotest.(check bool) "has the registry sections" true
      (List.mem_assoc "counters" kvs && List.mem_assoc "gauges" kvs
      && List.mem_assoc "timers" kvs
      && List.mem_assoc "histograms" kvs)
  | _ -> Alcotest.fail "json exposition is not an object"

let tests =
  [
    Alcotest.test_case "sanitize" `Quick sanitize;
    Alcotest.test_case "label split and escape" `Quick split_and_escape;
    Alcotest.test_case "golden openmetrics" `Quick golden;
    Alcotest.test_case "labeled families merge" `Quick labeled_families_merge;
    Alcotest.test_case "round trip" `Quick round_trip;
    Alcotest.test_case "parse rejects garbage" `Quick parse_rejects_garbage;
    Alcotest.test_case "monotone under concurrent load" `Quick monotone_under_load;
    Alcotest.test_case "json exposition" `Quick json_matches_snapshot;
  ]
