(* Validates a Chrome trace-event JSON file written by
   `ssdql query --trace-out` / `ssdql dist --trace-out`: it must parse,
   every "B" must be closed by a matching "E" on its (pid, tid) lane,
   timestamps must be nonnegative, and flow arrows must pair up.  The
   mode argument adds content checks: a "query" trace must contain
   unql.* operator spans; a "dist" trace (produced under a faulty plan)
   must show first sends, retransmissions and cross-lane deliveries. *)

module J = Ssd.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_trace: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let str_field name = function
  | J.Obj kvs -> (
    match List.assoc_opt name kvs with Some (J.String s) -> Some s | _ -> None)
  | _ -> None

let num_field name = function
  | J.Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some (J.Float f) -> Some f
    | Some (J.Int i) -> Some (float_of_int i)
    | _ -> None)
  | _ -> None

let () =
  let mode, path =
    match Sys.argv with
    | [| _; mode; path |] -> (mode, path)
    | _ ->
      prerr_endline "usage: check_trace (query|dist) TRACE.json";
      exit 2
  in
  let doc = try J.parse (read_file path) with e -> fail "%s" (Printexc.to_string e) in
  let events =
    match doc with
    | J.Obj kvs -> (
      match List.assoc_opt "traceEvents" kvs with
      | Some (J.List evs) -> evs
      | _ -> fail "missing traceEvents array")
    | _ -> fail "document is not an object"
  in
  if events = [] then fail "trace is empty";
  (* B/E stack discipline per lane *)
  let stacks : (int * int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack_of ev =
    let pid = int_of_float (Option.value ~default:0. (num_field "pid" ev)) in
    let tid = int_of_float (Option.value ~default:0. (num_field "tid" ev)) in
    match Hashtbl.find_opt stacks (pid, tid) with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks (pid, tid) s;
      s
  in
  let flows : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      (match num_field "ts" ev with
      | Some ts when ts < 0. -> fail "negative timestamp"
      | Some _ -> ()
      | None -> if str_field "ph" ev <> Some "M" then fail "event without ts");
      match str_field "ph" ev with
      | Some "B" ->
        let s = stack_of ev in
        s := Option.value ~default:"?" (str_field "name" ev) :: !s
      | Some "E" -> (
        let s = stack_of ev in
        match !s with
        | top :: rest when Some top = str_field "name" ev -> s := rest
        | top :: _ ->
          fail "E %s closes B %s"
            (Option.value ~default:"?" (str_field "name" ev))
            top
        | [] -> fail "E without open B")
      | Some ("s" | "f") ->
        let id = int_of_float (Option.value ~default:0. (num_field "id" ev)) in
        let st, en = Option.value ~default:(0, 0) (Hashtbl.find_opt flows id) in
        if str_field "ph" ev = Some "s" then Hashtbl.replace flows id (st + 1, en)
        else begin
          if st = 0 then fail "flow %d finishes before it starts" id;
          Hashtbl.replace flows id (st, en + 1)
        end
      | _ -> ())
    events;
  Hashtbl.iter
    (fun (pid, tid) s ->
      if !s <> [] then fail "lane (%d,%d) left %d spans open" pid tid (List.length !s))
    stacks;
  Hashtbl.iter
    (fun id (st, en) ->
      if st <> 1 || en <> 1 then fail "flow %d has %d starts / %d finishes" id st en)
    flows;
  let count name =
    List.length (List.filter (fun ev -> str_field "name" ev = Some name) events)
  in
  (match mode with
  | "query" ->
    let unql =
      List.exists
        (fun ev ->
          match str_field "name" ev with
          | Some n -> String.length n >= 5 && String.sub n 0 5 = "unql."
          | None -> false)
        events
    in
    if not unql then fail "query trace has no unql.* spans"
  | "dist" ->
    if count "dist.send" = 0 then fail "dist trace has no first sends";
    if count "dist.retransmit" = 0 then
      fail "faulty dist trace has no retransmissions";
    if count "dist.deliver" = 0 then fail "dist trace has no deliveries";
    if Hashtbl.length flows = 0 then fail "dist trace has no flow arrows"
  | m -> fail "unknown mode %s" m);
  Printf.printf "check_trace: %s ok (%d events, %d flows)\n" mode
    (List.length events) (Hashtbl.length flows)
