(* The structured event log: ring semantics (ordering, overwrite,
   drop accounting), JSONL rendering (one line per event, re-parses),
   and sink behavior (called outside the lock, exceptions swallowed). *)

module Metrics = Ssd_obs.Metrics
module Events = Ssd_obs.Events

let emit_and_tail () =
  let r = Metrics.create () in
  let log = Events.create ~registry:r ~capacity:8 () in
  for i = 1 to 5 do
    Events.emit log "test" [ ("i", Ssd.Json.Int i) ]
  done;
  let evs = Events.tail log in
  Alcotest.(check int) "all five buffered" 5 (List.length evs);
  Alcotest.(check (list int)) "oldest first, seq dense" [ 0; 1; 2; 3; 4 ]
    (List.map (fun e -> e.Events.seq) evs);
  Alcotest.(check (list string)) "kinds preserved"
    [ "test"; "test"; "test"; "test"; "test" ]
    (List.map (fun e -> e.Events.kind) evs);
  let last2 = Events.tail ~n:2 log in
  Alcotest.(check (list int)) "tail n keeps the newest" [ 3; 4 ]
    (List.map (fun e -> e.Events.seq) last2)

let overwrite_counts_drops () =
  let r = Metrics.create () in
  let log = Events.create ~registry:r ~capacity:4 () in
  for i = 1 to 10 do
    Events.emit log "e" [ ("i", Ssd.Json.Int i) ]
  done;
  let evs = Events.tail ~n:100 log in
  Alcotest.(check (list int)) "only the newest capacity survive" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Events.seq) evs);
  Alcotest.(check int) "emitted counts all" 10
    (Metrics.value (Metrics.counter ~registry:r "events.emitted"));
  Alcotest.(check int) "overwrites counted as drops" 6
    (Metrics.value (Metrics.counter ~registry:r "events.dropped"))

let jsonl_is_one_line () =
  let log = Events.create ~registry:(Metrics.create ()) () in
  Events.emit log "slow_query"
    [
      ("tenant", Ssd.Json.String "alice");
      ("latency_ms", Ssd.Json.Float 321.5);
      ("plan", Ssd.Json.String "line\nbreaks {inside}");
      ("est_rows", Ssd.Json.Null);
    ];
  match Events.tail log with
  | [ e ] ->
    let line = Events.render_jsonl e in
    Alcotest.(check bool) "no embedded newline" true
      (not (String.contains line '\n'));
    (match Ssd.Json.parse line with
    | Ssd.Json.Obj kvs ->
      Alcotest.(check bool) "envelope fields present" true
        (List.mem_assoc "seq" kvs && List.mem_assoc "ts" kvs
        && List.mem_assoc "event" kvs);
      Alcotest.(check bool) "payload fields survive" true
        (List.assoc "tenant" kvs = Ssd.Json.String "alice"
        && List.assoc "plan" kvs = Ssd.Json.String "line\nbreaks {inside}")
    | _ -> Alcotest.fail "event line is not a JSON object")
  | evs -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length evs))

let tail_jsonl_parses () =
  let log = Events.create ~registry:(Metrics.create ()) () in
  for i = 1 to 3 do
    Events.emit log "k" [ ("i", Ssd.Json.Int i) ]
  done;
  let body = Events.tail_jsonl log in
  let lines =
    String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" 3 (List.length lines);
  List.iter
    (fun l ->
      match Ssd.Json.parse l with
      | Ssd.Json.Obj _ -> ()
      | _ -> Alcotest.fail ("bad JSONL line: " ^ l))
    lines

let sink_receives_lines () =
  let log = Events.create ~registry:(Metrics.create ()) () in
  let got = Buffer.create 64 in
  Events.set_sink log (Some (Buffer.add_string got));
  Events.emit log "a" [];
  Events.emit log "b" [];
  let s = Buffer.contents got in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "sink saw both lines" 2 (List.length lines);
  Alcotest.(check bool) "newline-terminated" true
    (String.length s > 0 && s.[String.length s - 1] = '\n');
  (* a raising sink must not break emitters, and the ring still records *)
  Events.set_sink log (Some (fun _ -> failwith "disk full"));
  Events.emit log "c" [];
  Alcotest.(check int) "event buffered despite sink failure" 3
    (List.length (Events.tail log));
  Events.set_sink log None;
  Events.emit log "d" [];
  Alcotest.(check string) "removed sink sees nothing more" s (Buffer.contents got)

let capacity_reset () =
  let log = Events.create ~registry:(Metrics.create ()) ~capacity:4 () in
  Events.emit log "old" [];
  Events.set_capacity log 2;
  Alcotest.(check int) "resize discards buffered events" 0
    (List.length (Events.tail log));
  Events.emit log "new" [];
  match Events.tail log with
  | [ e ] -> Alcotest.(check string) "new events flow after resize" "new" e.Events.kind
  | _ -> Alcotest.fail "expected exactly the post-resize event"

let tests =
  [
    Alcotest.test_case "emit and tail" `Quick emit_and_tail;
    Alcotest.test_case "overwrite counts drops" `Quick overwrite_counts_drops;
    Alcotest.test_case "jsonl is one line" `Quick jsonl_is_one_line;
    Alcotest.test_case "tail jsonl parses" `Quick tail_jsonl_parses;
    Alcotest.test_case "sink receives lines" `Quick sink_receives_lines;
    Alcotest.test_case "capacity reset" `Quick capacity_reset;
  ]
