(* Metamorphic tests for the UnQL optimizer: rewrites must preserve
   semantics (bisimilar results on arbitrary graphs), and the prune
   counts must be consistent with the catalog statistics. *)

module Graph = Ssd.Graph
module Label = Ssd.Label
module Bisim = Ssd.Bisim
module Q = QCheck2.Gen

let print_pair (g, q) =
  Printf.sprintf "query: %s\ndb: %s" (Unql.Pretty.expr_to_string q) (Graph.to_string g)

(* Evaluate without the evaluator's own reordering, so the rewrite under
   test is the only difference between the two runs. *)
let raw_opts = { Unql.Eval.default_options with reorder_clauses = false }

let props =
  [
    Gen.qtest "reorder preserves semantics" ~count:100 ~print:print_pair
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        Bisim.equal
          (Unql.Eval.eval ~options:raw_opts ~db:g q)
          (Unql.Eval.eval ~options:raw_opts ~db:g (Unql.Optimize.reorder q)));
    Gen.qtest "reorder is idempotent" ~count:100 Gen.unql_query (fun q ->
        let once = Unql.Optimize.reorder q in
        Unql.Pretty.expr_to_string (Unql.Optimize.reorder once)
        = Unql.Pretty.expr_to_string once);
    Gen.qtest "prune_with_guide preserves semantics" ~count:100 ~print:print_pair
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let guide = Ssd_schema.Dataguide.build g in
        let q', _ = Unql.Optimize.prune_with_guide guide q in
        Bisim.equal (Unql.Eval.eval ~db:g q) (Unql.Eval.eval ~db:g q'));
    Gen.qtest "evaluating under the guide option preserves semantics" ~count:60
      ~print:print_pair
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let guide = Ssd_schema.Dataguide.build g in
        let opts = { Unql.Eval.default_options with dataguide = Some guide } in
        Bisim.equal (Unql.Eval.eval ~db:g q) (Unql.Eval.eval ~options:opts ~db:g q));
    (* The cost-based generator reordering is the one rewrite that can
       change evaluation ORDER of generators; it must not change the
       answer (up to bisimulation), on arbitrary — including cyclic —
       graphs. *)
    Gen.qtest "reorder_generators preserves semantics" ~count:100 ~print:print_pair
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let ann = Ssd_schema.Annotated.build g in
        Bisim.equal
          (Unql.Eval.eval ~options:raw_opts ~db:g q)
          (Unql.Eval.eval ~options:raw_opts ~db:g
             (Unql.Optimize.reorder_generators ann q)));
    (* A plan chosen for one graph is still correct (if possibly slow)
       on another: plans only reorder, never filter. *)
    Gen.qtest "foreign plans stay correct" ~count:60
      ~print:(fun ((g1, _), q) -> print_pair (g1, q))
      (Q.pair (Q.pair Gen.graph Gen.graph) Gen.unql_query)
      (fun ((g1, g2), q) ->
        let ann = Ssd_schema.Annotated.build g1 in
        Bisim.equal
          (Unql.Eval.eval ~options:raw_opts ~db:g2 q)
          (Unql.Eval.eval ~options:raw_opts ~db:g2
             (Unql.Optimize.reorder_generators ann q)));
  ]

(* ------------------------------------------------------------------ *)
(* Prune counts vs catalog statistics                                  *)
(* ------------------------------------------------------------------ *)

(* [select t where {l: \t} <- DB] probes one top-level label. *)
let probe l =
  Unql.Ast.(
    Select (Var "t", [ Gen (Pedges [ ([ Slit (Llit l) ], Pbind "t") ], Db) ]))

let prune_vs_stats () =
  let g = Ssd_workload.Movies.figure1 () in
  let guide = Ssd_schema.Dataguide.build g in
  let stats = Ssd_index.Stats.compute g in
  (* No label that actually occurs in the data may be pruned at the
     root... *)
  let top = Ssd_index.Stats.top_labels g ~k:stats.Ssd_index.Stats.n_distinct_labels in
  Alcotest.(check int) "catalog sees every distinct label"
    stats.Ssd_index.Stats.n_distinct_labels (List.length top);
  let root_labels =
    List.sort_uniq Label.compare (List.map fst (Graph.labeled_succ g (Graph.root g)))
  in
  List.iter
    (fun l ->
      let _, pruned = Unql.Optimize.prune_with_guide guide (probe l) in
      Alcotest.(check int)
        (Printf.sprintf "live label %s not pruned" (Label.to_string l))
        0 pruned)
    root_labels;
  (* ...while a label absent from the whole catalog must be pruned. *)
  let dead = Label.sym "nosuchlabel" in
  Alcotest.(check bool) "probe label is really absent" false
    (List.exists (fun (l, _) -> Label.equal l dead) top);
  let _, pruned = Unql.Optimize.prune_with_guide guide (probe dead) in
  Alcotest.(check int) "dead label pruned" 1 pruned

let prune_deep_paths () =
  let g = Ssd_workload.Movies.figure1 () in
  let guide = Ssd_schema.Dataguide.build g in
  let q = Unql.Parser.parse {| select t where {entry.movie.nosuchlabel: \t} <- DB |} in
  let _, pruned = Unql.Optimize.prune_with_guide guide q in
  Alcotest.(check int) "impossible deep path pruned" 1 pruned;
  let live = Unql.Parser.parse {| select {t: \t} where {entry.movie.title: \t} <- DB |} in
  let live', pruned = Unql.Optimize.prune_with_guide guide live in
  Alcotest.(check int) "live deep path kept" 0 pruned;
  Alcotest.(check bool) "kept query unchanged" true (live' = live)

let tests =
  props
  @ [
      Alcotest.test_case "prune counts vs Stats.compute" `Quick prune_vs_stats;
      Alcotest.test_case "prune deep paths on figure1" `Quick prune_deep_paths;
    ]
