(* Data integration (section 1.2): the model as "an extremely flexible
   format for data exchange between disparate databases".

   A relational movie catalogue and a JSON review feed are both encoded
   into the edge-labeled model, unioned, and queried with one language —
   no common schema ever existed.

   Run with: dune exec examples/data_integration.exe *)

module Label = Ssd.Label
module Graph = Ssd.Graph
module Tree = Ssd.Tree

let relational_side () =
  (* A little SQL-ish database... *)
  let films =
    {
      Ssd.Encode.rel_name = "film";
      attrs = [ "title"; "year"; "director" ];
      rows =
        [
          [ Label.Str "Casablanca"; Label.Int 1942; Label.Str "Curtiz" ];
          [ Label.Str "Play it again, Sam"; Label.Int 1972; Label.Str "Ross" ];
          [ Label.Str "Annie Hall"; Label.Int 1977; Label.Str "Allen" ];
        ];
    }
  in
  Ssd.Encode.tree_of_database [ films ]

let json_side () =
  (* ...and a JSON document from somewhere else entirely. *)
  let doc =
    {| {"reviews": [
          {"film": "Casablanca", "stars": 5, "text": "Here's looking at you."},
          {"film": "Annie Hall", "stars": 4, "text": "Neurotic and brilliant."}
       ]} |}
  in
  Ssd.Json.to_tree (Ssd.Json.parse doc)

let () =
  let rel = relational_side () in
  let json = json_side () in
  Format.printf "=== relational side, encoded ===@.%s@.@." (Tree.to_string rel);
  Format.printf "=== JSON side, encoded ===@.%s@.@." (Tree.to_string json);

  (* One database: the union of the two trees. *)
  let db = Graph.union (Graph.of_tree rel) (Graph.of_tree json) in

  (* Join across the two sources on the title string: note the regular
     path expressions absorbing each source's layout. *)
  let joined =
    Unql.Eval.run ~db
      {| select {match: {title: \t, stars: \s}}
         where {<film.tuple.title>.\t} <- DB,
               {<reviews._>: \r} <- DB,
               {<film>.\t2} <- r,
               {<stars>.\s} <- r,
               t = t2 |}
  in
  Format.printf "=== films with their review stars ===@.%s@.@." (Graph.to_string joined);

  (* Round-trip: the relational part can go back to structured-land
     (section 5, "the passage back from semistructured to structured"). *)
  let back = Ssd.Encode.database_of_tree rel in
  List.iter
    (fun r ->
      Format.printf "decoded relation %s(%s): %d rows@." r.Ssd.Encode.rel_name
        (String.concat ", " r.Ssd.Encode.attrs)
        (List.length r.Ssd.Encode.rows))
    back;

  (* And the JSON side can be exported again. *)
  Format.printf "@.re-exported JSON: %s@." (Ssd.Json.to_string (Ssd.Json.of_tree json));

  (* Or shipped to a Tsimmis-style mediator as OEM (the §1.2 exchange
     format this model generalizes). *)
  Format.printf "@.as OEM:@.%s@."
    (Ssd.Oem.to_string (Ssd.Oem.of_graph ~top:"reviews_feed" (Graph.of_tree json)))
