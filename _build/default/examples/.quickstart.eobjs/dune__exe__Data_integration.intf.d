examples/data_integration.mli:
