examples/schema_discovery.ml: Format List Ssd Ssd_index Ssd_schema Ssd_workload String Unql
