examples/schema_discovery.mli:
