examples/quickstart.ml: Format List Ssd Ssd_automata Ssd_index Ssd_workload String Unql
