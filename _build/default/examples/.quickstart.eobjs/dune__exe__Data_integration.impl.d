examples/data_integration.ml: Format List Ssd String Unql
