examples/movie_queries.ml: Format Printf Ssd Ssd_workload Unql
