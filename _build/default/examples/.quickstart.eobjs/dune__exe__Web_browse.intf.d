examples/web_browse.mli:
