examples/quickstart.mli:
