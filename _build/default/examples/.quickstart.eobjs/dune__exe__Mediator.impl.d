examples/mediator.ml: Format Ssd Ssd_schema Unql
