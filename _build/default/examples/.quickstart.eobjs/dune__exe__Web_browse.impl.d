examples/web_browse.ml: Array Format List Lorel Relstore Ssd Ssd_automata Ssd_dist Ssd_workload String Websql
