examples/movie_queries.mli:
