examples/mediator.mli:
