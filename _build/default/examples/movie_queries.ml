(* The movie queries the tutorial uses to motivate its query language
   (section 3): path queries with variables, regular expressions
   constraining paths, and deep restructuring via structural recursion.

   Run with: dune exec examples/movie_queries.exe *)

module Label = Ssd.Label
module Graph = Ssd.Graph

let show title g = Format.printf "@.== %s ==@.%s@." title (Graph.to_string g)

let () =
  let db = Ssd_workload.Movies.figure1 () in

  (* The select of section 3: tying paths together with variables. *)
  show "titles and directors of the same movie"
    (Unql.Eval.run ~db
       {| select {movie: {title: t, director: d}}
          where {<entry.movie>: \m} <- DB,
                {title: \t} <- m,
                {director: \d} <- m |});

  (* "Did Allen act in Casablanca?": find paths from a Movie edge down to
     an "Allen" edge that do not contain another Movie edge.  The
     references/is_referenced_in cycle of Figure 1 is why the constraint
     matters: without it the search would wander into the other movie
     (that back-edge must be excluded too — it reaches the other movie
     without crossing an edge spelled "movie"). *)
  let allen_in movie_title =
    Unql.Eval.run ~db
      (Printf.sprintf
         {| select {answer: t}
            where {<entry.movie>: \m} <- DB,
                  {title.%s} <- m,
                  {<(~movie & ~is_referenced_in)*."Allen">: \t} <- m |}
         (Label.to_string (Label.Str movie_title)))
  in
  show "Allen in \"Casablanca\"? (empty = no)" (allen_in "Casablanca");
  show "Allen in \"Play it again, Sam\"?" (allen_in "Play it again, Sam");

  (* Both cast encodings at once: regular alternation absorbs the
     irregularity the figure is about. *)
  show "all actors, regardless of cast encoding"
    (Unql.Eval.run ~db
       {| select {actor: \a}
          where {<entry._.cast.(credit)?.(actors|special_guests)>.\a} <- DB |});

  (* Deep restructuring 1: relabel movie -> film everywhere (structural
     recursion; works through the references cycle). *)
  show "relabel movie->film (sfun)"
    (Unql.Eval.run ~db (Unql.Restructure.As_query.relabel ~from_:"movie" ~to_:"film"));

  (* Deep restructuring 2: "correct the egregious error in the Bacall
     edge label". *)
  show "fix the Bacall mislabeling"
    (Unql.Eval.run ~db
       {| let sfun fix({"Bacall": T}) = {"Lauren Bacall": fix(T)}
               | fix({\L: T}) = {L: fix(T)}
          in fix(DB) |});

  (* Deep restructuring 3: delete budgets, collapse the credit
     indirection. *)
  show "drop budget edges, splice out credit"
    (Unql.Eval.run ~db
       {| let sfun nobudget({budget: T}) = {}
                 | nobudget({\L: T}) = {L: nobudget(T)}
          in let sfun flat({credit: T}) = flat(T)
                   | flat({\L: T}) = {L: flat(T)}
             in flat(nobudget(DB)) |})
