(* Adding structure (section 5): DataGuides, schema inference, and
   simulation-based conformance over schemaless data.

   Run with: dune exec examples/schema_discovery.exe *)

module Label = Ssd.Label
module Graph = Ssd.Graph
module Dataguide = Ssd_schema.Dataguide
module Gschema = Ssd_schema.Gschema

let () =
  let db = Ssd_workload.Movies.generate ~seed:3 ~n_entries:200 () in
  let stats = Ssd_index.Stats.compute db in
  Format.printf "=== database ===@.%a@.@." Ssd_index.Stats.pp stats;

  (* A DataGuide summarizes every path in the data exactly once: this is
     what a user browses instead of a schema. *)
  let guide = Dataguide.build db in
  Format.printf "=== dataguide: %d nodes summarize %d ===@." (Dataguide.n_nodes guide)
    stats.Ssd_index.Stats.n_nodes;
  List.iter
    (fun path ->
      if path <> [] then
        Format.printf "  %s@." (String.concat "." (List.map Label.to_string path)))
    (List.filter (fun p -> List.length p <= 2) (Dataguide.paths guide ~max_len:2));

  (* Infer a graph schema the data provably conforms to. *)
  let schema = Ssd_schema.Infer.infer ~k:3 db in
  Format.printf "@.=== inferred schema (%d nodes) ===@.%s@.@." (Gschema.n_nodes schema)
    (Gschema.to_string schema);
  Format.printf "data conforms to inferred schema: %b@." (Gschema.conforms db schema);

  (* A hand-written loose schema: conformance is simulation, so data may
     have *fewer* edges than the schema allows, never unexpected ones. *)
  let loose =
    Gschema.parse
      {| {entry: {movie | tvshow: &m
              {title: #string, year: #int, director: #string,
               budget: #float, references: *m, is_referenced_in: *m,
               cast: {_: {#string, _: {#string}}},
               episode: {#int: {#string}}}}} |}
  in
  Format.printf "@.figure-1 database conforms to loose schema: %b@."
    (Gschema.conforms (Ssd_workload.Movies.figure1 ()) loose);

  (* Schemas catch violations: relabel year values to strings and watch
     conformance break. *)
  let strict = Gschema.parse {| {entry: {_: {year: #int, _: _}}} |} in
  ignore strict;
  let bad =
    Unql.Restructure.relabel
      (fun l -> match l with Label.Int y when y > 1900 -> Label.Str (string_of_int y) | l -> l)
      db
  in
  let schema_of_good = Ssd_schema.Infer.infer ~k:3 db in
  Format.printf "tampered data still conforms: %b (violating nodes: %d)@."
    (Gschema.conforms bad schema_of_good)
    (List.length (Gschema.violations bad schema_of_good));

  (* Representative objects: the size/fidelity dial. *)
  Format.printf "@.=== k-representative-object sizes ===@.";
  List.iter
    (fun k ->
      let ro = Ssd_schema.Ro.build ~k db in
      Format.printf "  k=%d: %d classes@." k (Ssd_schema.Ro.n_classes ro))
    [ 0; 1; 2; 3; 4 ]
