(* A Tsimmis-style mediator (section 1.2): several sources with different
   vocabularies, wrapped into one mediated database by restructuring
   views, queried with one language.

   Source A ships OEM (a film archive), source B ships ssd syntax (a TV
   guide), source C is a JSON review feed.  The mediator: (1) converts
   each source into the model, (2) normalizes vocabularies with sfun
   views (film->movie, show->tvshow), (3) unions them, (4) validates the
   result against a mediated schema, and (5) answers integrated queries.

   Run with: dune exec examples/mediator.exe *)

module Graph = Ssd.Graph
module Label = Ssd.Label

let source_a_oem =
  {| <archive, set, {
       <film, set, {
         <name, str, "Casablanca">,
         <year, int, 1942>,
         <star, str, "Bogart"> }>,
       <film, set, {
         <name, str, "The Third Man">,
         <year, int, 1949>,
         <star, str, "Welles"> }> }> |}

let source_b_ssd =
  {| {show: {name: "Casablanca", episode: {1: {"Who Holds Tomorrow?"}}},
      show: {name: "Tales of Tomorrow", episode: {1: {"Verdict"}}}} |}

let source_c_json =
  {| {"reviews": [ {"about": "Casablanca", "stars": 5},
                   {"about": "The Third Man", "stars": 5},
                   {"about": "Tales of Tomorrow", "stars": 3} ]} |}

let () =
  (* 1. wrap each source into the model *)
  let a = Ssd.Oem.to_graph (Ssd.Oem.parse source_a_oem) in
  let b = Ssd.Syntax.parse_graph source_b_ssd in
  let c = Graph.of_tree (Ssd.Json.to_tree (Ssd.Json.parse source_c_json)) in
  Format.printf "sources: A(OEM) %d nodes, B(ssd) %d nodes, C(json) %d nodes@."
    (Graph.n_nodes a) (Graph.n_nodes b) (Graph.n_nodes c);

  (* 2+3. normalize vocabularies and union — the mediated database *)
  let mediated = Graph.unions [ a; b; c ] in
  let reg =
    Unql.Views.(
      empty
      |> define ~name:"catalog"
           (* one vocabulary: film/show -> entry, name -> title, and the
              archive/star wrappers mapped away *)
           {| let sfun norm({archive: T}) = norm(T)
                    | norm({film: T})     = {entry: {movie: norm(T)}}
                    | norm({show: T})     = {entry: {tvshow: norm(T)}}
                    | norm({name: T})     = {title: norm(T)}
                    | norm({star: T})     = {cast: {actors: norm(T)}}
                    | norm({\L: T})       = {L: norm(T)}
              in norm(DB) |}
      |> define ~name:"ratings"
           {| select {rating: {title: \t, stars: \s}}
              where {<reviews._>: \r} <- DB, {about.\t} <- r, {stars.\s} <- r |})
  in
  let catalog = Unql.Views.materialize reg ~db:mediated "catalog" in
  Format.printf "@.mediated catalog:@.%s@." (Graph.to_string catalog);

  (* 4. the mediated schema — sources must stay within it *)
  let schema =
    Ssd_schema.Gschema.parse
      {| {entry: {movie | tvshow:
            {title: #string, year: #int,
             cast: {actors: #string},
             episode: {#int: {#string}}}},
          reviews: &any {_: *any}} |}
  in
  Format.printf "@.catalog conforms to the mediated schema: %b@."
    (Ssd_schema.Gschema.conforms catalog schema);

  (* 5. integrated query: titles known to every source kind, with stars *)
  let integrated =
    Unql.Views.run reg ~db:mediated
      {| select {hit: {title: \t, stars: \s}}
         where {<entry._.title>.\t} <- catalog,
               {rating: \r} <- ratings,
               {title.\t2} <- r, {stars.\s} <- r,
               t = t2 |}
  in
  Format.printf "@.titles with their review stars, across all sources:@.%s@."
    (Graph.to_string integrated)
