(* Quickstart: build the paper's Figure 1 database and ask it the three
   browsing questions of section 1.3 — the queries "standard relational or
   object-oriented query languages" cannot answer generically.

   Run with: dune exec examples/quickstart.exe *)

module Label = Ssd.Label
module Graph = Ssd.Graph

let () =
  let db = Ssd_workload.Movies.figure1 () in
  Format.printf "=== Figure 1 database ===@.%s@.@." (Graph.to_string db);

  (* Q1: Where in the database is the string "Casablanca" to be found? *)
  Format.printf "Q1: where is \"Casablanca\"?@.";
  let nfa = Ssd_automata.Nfa.of_string {| _* . "Casablanca" |} in
  let hits = Ssd_automata.Product.accepting_nodes db nfa in
  List.iter
    (fun node ->
      match Ssd_automata.Product.witness db nfa node with
      | Some path ->
        Format.printf "  at path %s@."
          (String.concat "." (List.map Label.to_string path))
      | None -> ())
    hits;

  (* Q2: Are there integers in the database greater than 2^16? *)
  Format.printf "@.Q2: integers greater than 2^16?@.";
  let result =
    Unql.Eval.run ~db
      {| select {big: \l} where {<_*>.\l} <- DB, isint(l), l > 65536 |}
  in
  Format.printf "  %s@." (Graph.to_string result);

  (* Q3: What objects have an attribute name that starts with "act"? *)
  Format.printf "@.Q3: attribute names starting with \"act\"?@.";
  let idx = Ssd_index.Text_index.build db in
  let occs = Ssd_index.Text_index.find_prefix idx "act" in
  List.iter
    (fun o ->
      Format.printf "  node %d has attribute %s@." o.Ssd_index.Text_index.src
        (Label.to_string o.Ssd_index.Text_index.label))
    occs;

  (* And a plain select, for the road. *)
  Format.printf "@.All movie titles:@.";
  let titles = Unql.Eval.run ~db {| select {title: t} where {<entry.movie.title>: \t} <- DB |} in
  Format.printf "  %s@." (Graph.to_string titles)
