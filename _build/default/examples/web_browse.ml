(* Browsing a web-shaped database (section 1.1): arbitrary-depth regular
   path queries over cyclic data, the relational/datalog alternative, and
   decomposed evaluation across sites.

   Run with: dune exec examples/web_browse.exe *)

module Label = Ssd.Label
module Graph = Ssd.Graph

let () =
  let web = Ssd_workload.Webgraph.generate ~n_pages:500 ~n_hosts:8 () in
  Format.printf "web graph: %d nodes, %d edges@." (Graph.n_nodes web) (Graph.n_edges web);

  (* Pages reachable from host0's pages by following links only. *)
  let nfa = Ssd_automata.Nfa.of_string {| host.page.(link)*.url._ |} in
  let urls = Ssd_automata.Product.accepting_nodes web nfa in
  Format.printf "url leaves reachable over link paths: %d@." (List.length urls);

  (* The same query through the relational strategy: the graph as a
     (node, label, node) relation plus recursive datalog. *)
  let edb = Relstore.Triple.edb web in
  let program =
    Relstore.Datalog.parse
      {| pages(?P)    :- root(?R), edge(?R, host, ?H), edge(?H, page, ?P).
         pages(?Q)    :- pages(?P), edge(?P, link, ?Q).
         answer(?U)   :- pages(?P), edge(?P, url, ?N), edge(?N, ?U, ?Leaf). |}
  in
  let urls_datalog = Relstore.Datalog.query ~edb program "answer" in
  Format.printf "same count via graph datalog: %d@." (List.length urls_datalog);

  (* Decompose the query over 4 sites (section 4 / Suciu VLDB'96). *)
  let partition = Ssd_dist.Decompose.partition_bfs ~k:4 web in
  let answers, stats = Ssd_dist.Decompose.eval web partition nfa in
  Format.printf
    "decomposed over %d sites: %d answers, %d cross edges, %d rounds, %d messages,@.  local work %s, sequential %d, makespan %d@."
    stats.Ssd_dist.Decompose.sites (List.length answers)
    stats.Ssd_dist.Decompose.cross_edges stats.Ssd_dist.Decompose.rounds
    stats.Ssd_dist.Decompose.messages
    (String.concat "+"
       (Array.to_list (Array.map string_of_int stats.Ssd_dist.Decompose.local_work)))
    stats.Ssd_dist.Decompose.sequential_work stats.Ssd_dist.Decompose.makespan;

  (* WebSQL-style: local vs global links are first-class (the construct
     "specific to web queries" section 3 mentions). *)
  let local_only =
    Websql.Eval.run ~db:web
      {| SELECT d.url FROM DOCUMENT d SUCH THAT "http://host0.example/p0" ->* d |}
  in
  let anywhere =
    Websql.Eval.run ~db:web
      {| SELECT d.url FROM DOCUMENT d SUCH THAT "http://host0.example/p0" (-> | =>)* d |}
  in
  Format.printf "WebSQL from p0: %d pages by local links only, %d including global@."
    (Relstore.Relation.cardinality local_only)
    (Relstore.Relation.cardinality anywhere);

  (* Lorel-style browsing with wildcards. *)
  let result =
    Lorel.Eval.run ~db:web
      {| select P.title from DB.host.page X, X.link.link P where P.url like "host0" |}
  in
  Format.printf "pages two links deep landing on host0: %d rows@."
    (List.length (Graph.labeled_succ result (Graph.root result)))
