lib/relstore/triple.mli: Relation Ssd
