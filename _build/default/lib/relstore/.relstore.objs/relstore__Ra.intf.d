lib/relstore/ra.mli: Relation Ssd
