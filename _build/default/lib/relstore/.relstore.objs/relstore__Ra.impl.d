lib/relstore/ra.ml: Array Hashtbl List Printf Relation Ssd
