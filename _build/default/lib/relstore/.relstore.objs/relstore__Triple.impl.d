lib/relstore/triple.ml: Array Hashtbl Relation Ssd
