lib/relstore/datalog.ml: Buffer Format Hashtbl List Map Option Printf Ssd String
