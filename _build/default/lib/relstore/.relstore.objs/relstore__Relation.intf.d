lib/relstore/relation.mli: Format Ssd
