lib/relstore/relation.ml: Array Format List Set Ssd Stdlib String
