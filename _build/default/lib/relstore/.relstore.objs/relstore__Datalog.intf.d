lib/relstore/datalog.mli: Format Ssd
