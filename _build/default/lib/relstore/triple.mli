(** The triple encoding of a data graph.

    Section 3: "We can take the database as a large relation of type
    (node-id, label, node-id) and consider the expressive power of
    relational languages on this structure."  The paper's complications are
    handled as follows:

    - heterogeneous labels: field values are the {!Ssd.Label.t} tagged
      union (complication 1);
    - no information is held at nodes in our model, so no extra relation
      is needed (complication 2);
    - node identifiers appear as [Int] labels and are meant as temporary
      names; {!to_graph} consumes them again (complication 3);
    - reachability from the root: the encoding also exports a unary [root]
      relation so queries can restrict to forward-reachable data
      (complication 4). *)

(** [edges g] is the relation [edge(src, label, dst)] over attributes
    ["src"; "label"; "dst"].  ε-edges are ε-eliminated first, so the
    encoding captures the tree semantics. *)
val edges : Ssd.Graph.t -> Relation.t

(** [root g] is the unary relation [root(node)] over attribute ["node"]. *)
val root : Ssd.Graph.t -> Relation.t

(** Rebuild a graph from [edge] and [root] relations (inverse of
    {!edges}/{!root} up to node renaming, hence up to bisimilarity).
    @raise Invalid_argument if [root] is not a singleton or attributes are
    wrong. *)
val to_graph : edges:Relation.t -> root:Relation.t -> Ssd.Graph.t

(** Datalog EDB view: [("edge", triples); ("root", [[n]])], the input
    format of {!Datalog.eval}. *)
val edb : Ssd.Graph.t -> (string * Ssd.Label.t list list) list
