(** Relational algebra over {!Relation}.

    Section 3 of the paper observes that UnQL "when restricted to input and
    output data that conform to a relational schema ... expresses exactly
    the relational algebra"; this module is that target algebra, used
    directly by experiment E10 and as the bottom layer of the datalog
    engine. *)

type pred = Relation.row -> bool

(** [select p r] keeps the rows satisfying [p]. *)
val select : pred -> Relation.t -> Relation.t

(** [select_eq r attr v] is the common special case σ_{attr = v}. *)
val select_eq : Relation.t -> string -> Ssd.Label.t -> Relation.t

(** [project attrs r] projects onto [attrs] (order taken from the
    argument; duplicates in the result collapse, per set semantics).
    @raise Not_found if an attribute is absent. *)
val project : string list -> Relation.t -> Relation.t

(** [rename (old_name, new_name) r]. *)
val rename : string * string -> Relation.t -> Relation.t

(** Natural join on the shared attributes (hash join on the common
    columns; degenerates to a cartesian product when none are shared). *)
val join : Relation.t -> Relation.t -> Relation.t

(** Set operations; attribute lists must match exactly.
    @raise Invalid_argument otherwise. *)

val union : Relation.t -> Relation.t -> Relation.t
val diff : Relation.t -> Relation.t -> Relation.t
val inter : Relation.t -> Relation.t -> Relation.t
