(** Relations with set semantics.

    The relational substrate for section 3's first evaluation strategy:
    "model the graph as a relational database and then exploit a
    relational query language."  Field values are {!Ssd.Label.t}, so the
    heterogeneous label types of the model embed directly (the paper's
    complication #1 — labels drawn from a heterogeneous collection of
    types — is handled by the tagged union rather than by splitting into
    several relations). *)

type row = Ssd.Label.t array

type t

(** [create attrs] is the empty relation over the given attribute names.
    @raise Invalid_argument on duplicate attribute names. *)
val create : string list -> t

val attrs : t -> string array
val arity : t -> int
val cardinality : t -> int

(** Column position of an attribute.
    @raise Not_found if absent. *)
val column : t -> string -> int

(** [add r row] inserts (set semantics: duplicates are absorbed).
    @raise Invalid_argument on arity mismatch. *)
val add : t -> row -> t

val of_rows : string list -> row list -> t

(** Rows in an unspecified but stable order. *)
val rows : t -> row list

val mem : t -> row -> bool
val is_empty : t -> bool
val fold : ('a -> row -> 'a) -> 'a -> t -> 'a
val iter : (row -> unit) -> t -> unit

(** Set equality (attribute lists must match exactly). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
