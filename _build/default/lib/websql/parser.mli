(** Parser for the WebSQL-style concrete syntax (keywords are
    case-insensitive):

    {v
      SELECT d.url, d.title
      FROM DOCUMENT d SUCH THAT "http://host0.example/p0" (-> | =>)* d,
           DOCUMENT e SUCH THAT d -> e
      WHERE e.title CONTAINS "Page" AND NOT d MENTIONS "draft"
    v}

    Path atoms: [->] local link (same host), [=>] global link (crossing
    hosts), [~>] either; combined with [|], [*], [+], [?] and grouping.
    [ANYWHERE d] ranges [d] over all documents (the crawler's view). *)

exception Parse_error of string

val parse : string -> Ast.query
