(** Evaluation of WebSQL-style queries.

    Navigation runs the path expression's derivatives against the
    document/link view (memoized on (document, derivative), so cyclic
    link structures terminate); each surviving binding of the [FROM]
    variables becomes one row of the result {e relation}, with one column
    per select item (named [d_attr]; missing attributes are the empty
    string — the web never promised you a title). *)

exception Runtime_error of string

val eval : db:Ssd.Graph.t -> Ast.query -> Relstore.Relation.t
val run : db:Ssd.Graph.t -> string -> Relstore.Relation.t

(** Documents reachable from [start] along [path] (exposed for tests). *)
val reachable : Web.t -> start:int -> Ast.pathre -> int list
