module Label = Ssd.Label
module Relation = Relstore.Relation
open Ast

exception Runtime_error of string

let reachable w ~start path =
  let seen = Hashtbl.create 64 in
  let answers = Hashtbl.create 16 in
  let rec go d r =
    if r <> Void && not (Hashtbl.mem seen (d, r)) then begin
      Hashtbl.add seen (d, r) ();
      if nullable r then Hashtbl.replace answers d ();
      List.iter (fun (kind, q) -> go q (deriv r kind)) (Web.links w d)
    end
  in
  go start path;
  Hashtbl.fold (fun d () acc -> d :: acc) answers [] |> List.sort_uniq compare

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0

let eval_operand w env = function
  | Lit s -> Some s
  | Dattr (d, a) -> (
    match List.assoc_opt d env with
    | None -> raise (Runtime_error ("unbound document variable " ^ d))
    | Some doc -> Web.attr w doc a)

let rec eval_cond w env = function
  | Equals (o1, o2) -> (
    match eval_operand w env o1, eval_operand w env o2 with
    | Some a, Some b -> a = b
    | _ -> false)
  | Contains (o, needle) -> (
    match eval_operand w env o with
    | Some s -> contains_substring s needle
    | None -> false)
  | Mentions (d, needle) -> (
    match List.assoc_opt d env with
    | None -> raise (Runtime_error ("unbound document variable " ^ d))
    | Some doc -> List.exists (fun s -> contains_substring s needle) (Web.texts w doc))
  | And (a, b) -> eval_cond w env a && eval_cond w env b
  | Or (a, b) -> eval_cond w env a || eval_cond w env b
  | Not c -> not (eval_cond w env c)

let eval ~db q =
  let w = Web.of_graph db in
  let bind envs spec =
    List.concat_map
      (fun env ->
        let starts =
          match spec.start with
          | From_url u -> (
            match Web.by_url w u with
            | Some d -> [ d ]
            | None -> [])
          | From_var x -> (
            match List.assoc_opt x env with
            | Some d -> [ d ]
            | None -> raise (Runtime_error ("unbound document variable " ^ x)))
          | From_anywhere -> Web.documents w
        in
        List.concat_map
          (fun start ->
            List.map (fun d -> (spec.dvar, d) :: env) (reachable w ~start spec.path))
          starts)
      envs
  in
  let envs = List.fold_left bind [ [] ] q.from in
  let envs =
    match q.where with
    | None -> envs
    | Some c -> List.filter (fun env -> eval_cond w env c) envs
  in
  let attrs = List.map (fun (d, a) -> d ^ "_" ^ a) q.select in
  List.fold_left
    (fun rel env ->
      let row =
        Array.of_list
          (List.map
             (fun (d, a) ->
               Label.Str (Option.value ~default:"" (eval_operand w env (Dattr (d, a)))))
             q.select)
      in
      Relation.add rel row)
    (Relation.create attrs) envs

let run ~db src = eval ~db (Parser.parse src)
