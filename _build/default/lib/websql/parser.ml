module Label = Ssd.Label
open Ast

exception Parse_error of string

type st = {
  src : string;
  mutable pos : int;
}

let fail st msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    st.pos <- st.pos + 1;
    skip_ws st
  | _ -> ()

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let eat st s msg = if looking_at st s then st.pos <- st.pos + String.length s else fail st msg

let lex_ident st =
  skip_ws st;
  let start = st.pos in
  while
    match peek st with
    | Some c -> Label.is_ident_char c
    | None -> false
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected an identifier";
  String.sub st.src start (st.pos - start)

let peek_keyword st =
  skip_ws st;
  match peek st with
  | Some c when Label.is_ident_start c ->
    let p = st.pos in
    let w = String.uppercase_ascii (lex_ident st) in
    st.pos <- p;
    Some w
  | _ -> None

let eat_keyword st w =
  if peek_keyword st = Some w then begin
    skip_ws st;
    ignore (lex_ident st);
    true
  end
  else false

let lex_string st =
  skip_ws st;
  eat st "\"" "expected a string literal";
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
       | Some c -> Buffer.add_char buf c
       | None -> fail st "unterminated escape");
      st.pos <- st.pos + 1;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      loop ()
  in
  loop ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Path regular expressions over -> => ~>                              *)
(* ------------------------------------------------------------------ *)

let rec parse_alt st =
  let left = parse_seq st in
  skip_ws st;
  if peek st = Some '|' then begin
    st.pos <- st.pos + 1;
    Alt (left, parse_alt st)
  end
  else left

and parse_seq st =
  let left = parse_postfix st in
  skip_ws st;
  (* sequence by juxtaposition; stop before the bound variable *)
  if looking_at st "->" || looking_at st "=>" || looking_at st "~>" || peek st = Some '(' then
    Seq (left, parse_seq st)
  else left

and parse_postfix st =
  let r = ref (parse_atom st) in
  let continue = ref true in
  while !continue do
    skip_ws st;
    match peek st with
    | Some '*' ->
      st.pos <- st.pos + 1;
      r := Star !r
    | Some '+' ->
      st.pos <- st.pos + 1;
      r := Plus !r
    | Some '?' ->
      st.pos <- st.pos + 1;
      r := Opt !r
    | _ -> continue := false
  done;
  !r

and parse_atom st =
  skip_ws st;
  if looking_at st "->" then begin
    st.pos <- st.pos + 2;
    Atom Local
  end
  else if looking_at st "=>" then begin
    st.pos <- st.pos + 2;
    Atom Global
  end
  else if looking_at st "~>" then begin
    st.pos <- st.pos + 2;
    Atom Any
  end
  else if peek st = Some '(' then begin
    st.pos <- st.pos + 1;
    let r = parse_alt st in
    skip_ws st;
    eat st ")" "expected ')'";
    r
  end
  else fail st "expected a link atom (->, =>, ~>) or '('"

(* ------------------------------------------------------------------ *)
(* Query structure                                                     *)
(* ------------------------------------------------------------------ *)

let parse_docspec st =
  if eat_keyword st "DOCUMENT" then begin
    let dvar = lex_ident st in
    if not (eat_keyword st "SUCH") then fail st "expected SUCH THAT";
    if not (eat_keyword st "THAT") then fail st "expected THAT";
    skip_ws st;
    let start =
      match peek st with
      | Some '"' -> From_url (lex_string st)
      | Some c when Label.is_ident_start c -> From_var (lex_ident st)
      | _ -> fail st "expected a start URL or document variable"
    in
    let path =
      skip_ws st;
      if looking_at st "->" || looking_at st "=>" || looking_at st "~>" || peek st = Some '('
      then parse_alt st
      else Eps
    in
    (* the trailing bound variable restates dvar *)
    let trailing = lex_ident st in
    if trailing <> dvar then
      fail st (Printf.sprintf "path must end in the bound variable %s, got %s" dvar trailing);
    { dvar; start; path }
  end
  else if eat_keyword st "ANYWHERE" then
    let dvar = lex_ident st in
    { dvar; start = From_anywhere; path = Eps }
  else fail st "expected DOCUMENT or ANYWHERE"

let parse_operand st =
  skip_ws st;
  match peek st with
  | Some '"' -> Lit (lex_string st)
  | Some c when Label.is_ident_start c ->
    let d = lex_ident st in
    skip_ws st;
    eat st "." "expected '.' after document variable";
    let a = lex_ident st in
    Dattr (d, a)
  | _ -> fail st "expected d.attr or a string literal"

let rec parse_cond st = parse_or st

and parse_or st =
  let left = parse_and st in
  if eat_keyword st "OR" then Or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if eat_keyword st "AND" then And (left, parse_and st) else left

and parse_not st =
  if eat_keyword st "NOT" then Not (parse_not st) else parse_base st

and parse_base st =
  skip_ws st;
  if peek st = Some '(' then begin
    st.pos <- st.pos + 1;
    let c = parse_cond st in
    skip_ws st;
    eat st ")" "expected ')'";
    c
  end
  else begin
    (* MENTIONS has a document variable on the left, not an operand *)
    let save = st.pos in
    match peek st with
    | Some c when Label.is_ident_start c -> (
      let d = lex_ident st in
      if eat_keyword st "MENTIONS" then Mentions (d, lex_string st)
      else begin
        st.pos <- save;
        finish_comparison st
      end)
    | _ -> finish_comparison st
  end

and finish_comparison st =
  let lhs = parse_operand st in
  if eat_keyword st "CONTAINS" then Contains (lhs, lex_string st)
  else begin
    skip_ws st;
    eat st "=" "expected '=' or CONTAINS";
    let rhs = parse_operand st in
    Equals (lhs, rhs)
  end

let parse src =
  let st = { src; pos = 0 } in
  if not (eat_keyword st "SELECT") then fail st "query must start with SELECT";
  let item () =
    let d = lex_ident st in
    skip_ws st;
    eat st "." "expected '.' in the select list";
    let a = lex_ident st in
    (d, a)
  in
  let select = ref [ item () ] in
  skip_ws st;
  while peek st = Some ',' && peek_keyword st <> Some "FROM" do
    st.pos <- st.pos + 1;
    (match peek_keyword st with
     | Some ("DOCUMENT" | "ANYWHERE") -> fail st "expected a select item"
     | _ -> select := item () :: !select);
    skip_ws st
  done;
  if not (eat_keyword st "FROM") then fail st "expected FROM";
  let from = ref [ parse_docspec st ] in
  skip_ws st;
  while peek st = Some ',' do
    st.pos <- st.pos + 1;
    from := parse_docspec st :: !from;
    skip_ws st
  done;
  let where = if eat_keyword st "WHERE" then Some (parse_cond st) else None in
  skip_ws st;
  if peek st <> None then fail st "trailing input after query";
  { select = List.rev !select; from = List.rev !from; where }
