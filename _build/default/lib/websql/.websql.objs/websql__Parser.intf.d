lib/websql/parser.mli: Ast
