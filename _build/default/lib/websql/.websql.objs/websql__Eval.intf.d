lib/websql/eval.mli: Ast Relstore Ssd Web
