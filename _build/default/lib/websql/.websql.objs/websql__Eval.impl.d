lib/websql/eval.ml: Array Ast Hashtbl List Option Parser Relstore Ssd String Web
