lib/websql/parser.ml: Ast Buffer List Printf Ssd String
