lib/websql/web.mli: Ast Ssd
