lib/websql/ast.ml: Format
