lib/websql/web.ml: Ast Hashtbl List Ssd
