(** Abstract syntax of the WebSQL-style language.

    Section 3 lists WebSQL (Mendelzon–Mihaila–Milo) among the SQL-like
    languages "with a number of constructs specific to web queries": the
    database is the web itself, navigation distinguishes {e local} links
    (same server) from {e global} ones, and path expressions are regular
    expressions over those two link kinds.  Queries return {e tables}
    (this language predates returning graphs), which is why {!Eval}
    produces a {!Relstore.Relation.t}. *)

(** One navigation step. *)
type link =
  | Local (** [->] — a link staying on the same host *)
  | Global (** [=>] — a link crossing hosts *)
  | Any (** [~>] — either *)

(** Regular expressions over links. *)
type pathre =
  | Void (** matches nothing (dead derivative) *)
  | Eps
  | Atom of link
  | Seq of pathre * pathre
  | Alt of pathre * pathre
  | Star of pathre
  | Plus of pathre
  | Opt of pathre

(** [FROM DOCUMENT d SUCH THAT start path] *)
type docspec = {
  dvar : string;
  start : start;
  path : pathre;
}

and start =
  | From_url of string (** navigation starts at the page with this URL *)
  | From_var of string (** ... at a previously bound document *)
  | From_anywhere (** ... at every page (the crawler's view) *)

type operand =
  | Dattr of string * string (** [d.title] — an attribute of a document *)
  | Lit of string

type cond =
  | Equals of operand * operand
  | Contains of operand * string (** substring on the attribute text *)
  | Mentions of string * string (** [d MENTIONS "w"]: any text on the page *)
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type query = {
  select : (string * string) list; (** (document var, attribute) pairs *)
  from : docspec list;
  where : cond option;
}

(* Nullability and Brzozowski derivative over the 2½-letter alphabet;
   the path-expression spaces here are tiny, so derivatives are the
   simplest correct evaluator. *)

let rec nullable = function
  | Void -> false
  | Eps -> true
  | Atom _ -> false
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Star _ -> true
  | Plus a -> nullable a
  | Opt _ -> true

let atom_matches a (step : link) =
  match a with
  | Any -> true
  | Local -> step = Local
  | Global -> step = Global

let rec deriv r (step : link) =
  let seq a b =
    match a, b with
    | Void, _ | _, Void -> Void
    | Eps, r | r, Eps -> r
    | a, b -> Seq (a, b)
  in
  let alt a b =
    match a, b with
    | Void, r | r, Void -> r
    | a, b -> if a = b then a else Alt (a, b)
  in
  match r with
  | Void | Eps -> Void
  | Atom a -> if atom_matches a step then Eps else Void
  | Seq (a, b) ->
    let da = seq (deriv a step) b in
    if nullable a then alt da (deriv b step) else da
  | Alt (a, b) -> alt (deriv a step) (deriv b step)
  | Star a -> seq (deriv a step) (Star a)
  | Plus a -> seq (deriv a step) (Star a)
  | Opt a -> deriv a step

let rec pp_pathre fmt = function
  | Void -> Format.pp_print_string fmt "<void>"
  | Eps -> Format.pp_print_string fmt "()"
  | Atom Local -> Format.pp_print_string fmt "->"
  | Atom Global -> Format.pp_print_string fmt "=>"
  | Atom Any -> Format.pp_print_string fmt "~>"
  | Seq (a, b) -> Format.fprintf fmt "%a %a" pp_pathre a pp_pathre b
  | Alt (a, b) -> Format.fprintf fmt "(%a | %a)" pp_pathre a pp_pathre b
  | Star a -> Format.fprintf fmt "(%a)*" pp_pathre a
  | Plus a -> Format.fprintf fmt "(%a)+" pp_pathre a
  | Opt a -> Format.fprintf fmt "(%a)?" pp_pathre a
