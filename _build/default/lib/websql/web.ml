module Graph = Ssd.Graph
module Label = Ssd.Label

type t = {
  g : Graph.t;
  pages : int list;
  host_of : (int, int) Hashtbl.t; (* page -> host node *)
  url_index : (string, int) Hashtbl.t;
}

let link_sym = Label.Sym "link"

let of_graph g =
  let root = Graph.root g in
  let host_of = Hashtbl.create 64 in
  let url_index = Hashtbl.create 64 in
  let pages = ref [] in
  let hosts =
    List.filter_map
      (fun (l, v) -> if Label.equal l (Label.Sym "host") then Some v else None)
      (Graph.labeled_succ g root)
  in
  if hosts = [] then invalid_arg "Websql.Web.of_graph: no host edges at the root";
  List.iter
    (fun h ->
      List.iter
        (fun (l, p) ->
          if Label.equal l (Label.Sym "page") && not (Hashtbl.mem host_of p) then begin
            Hashtbl.add host_of p h;
            pages := p :: !pages
          end)
        (Graph.labeled_succ g h))
    hosts;
  let web = { g; pages = List.rev !pages; host_of; url_index } in
  List.iter
    (fun p ->
      List.iter
        (fun (l, v) ->
          if Label.equal l (Label.Sym "url") then
            List.iter
              (fun (l', _) ->
                match l' with
                | Label.Str u -> Hashtbl.replace url_index u p
                | _ -> ())
              (Graph.labeled_succ g v))
        (Graph.labeled_succ g p))
    web.pages;
  web

let documents w = w.pages

let by_url w u = Hashtbl.find_opt w.url_index u

let links w p =
  List.filter_map
    (fun (l, q) ->
      if Label.equal l link_sym && Hashtbl.mem w.host_of q then
        let kind =
          if Hashtbl.find w.host_of p = Hashtbl.find w.host_of q then Ast.Local
          else Ast.Global
        in
        Some (kind, q)
      else None)
    (Graph.labeled_succ w.g p)

let attr w p name =
  List.find_map
    (fun (l, v) ->
      if Label.equal l (Label.Sym name) then
        List.find_map
          (fun (l', _) -> match l' with Label.Str s -> Some s | _ -> None)
          (Graph.labeled_succ w.g v)
      else None)
    (Graph.labeled_succ w.g p)

let texts w p =
  List.concat_map
    (fun (l, v) ->
      if Label.equal l link_sym then []
      else
        List.filter_map
          (fun (l', _) -> match l' with Label.Str s -> Some s | _ -> None)
          (Graph.labeled_succ w.g v))
    (Graph.labeled_succ w.g p)
