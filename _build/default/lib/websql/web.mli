(** The document/link view of a data graph.

    WebSQL sees the world as documents connected by typed links, not as an
    edge-labeled graph; this adapter extracts that view from graphs shaped
    like {!Ssd_workload.Webgraph}'s output ([root --host--> h --page--> p],
    pages with [url]/[title] attribute edges and [link] edges).  A link is
    {e local} when source and target live under the same host. *)

type t

(** @raise Invalid_argument if the graph has no [host]/[page] structure. *)
val of_graph : Ssd.Graph.t -> t

(** All document (page) nodes. *)
val documents : t -> int list

(** The document whose [url] attribute equals the string, if any. *)
val by_url : t -> string -> int option

(** Outgoing links as (kind, target document). *)
val links : t -> int -> (Ast.link * int) list

(** Attribute text of a document ([url], [title], ...): the first string
    value under the attribute edge. *)
val attr : t -> int -> string -> string option

(** Every text (string value) on the page's non-link attributes — the
    MENTIONS search space. *)
val texts : t -> int -> string list
