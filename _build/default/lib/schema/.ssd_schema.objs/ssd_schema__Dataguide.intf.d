lib/schema/dataguide.mli: Ssd
