lib/schema/infer.ml: Gschema Hashtbl List Option Ro Ssd Ssd_automata String
