lib/schema/ro.ml: Array Hashtbl List Ssd Stdlib
