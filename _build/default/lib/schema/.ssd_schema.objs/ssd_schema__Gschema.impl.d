lib/schema/gschema.ml: Array Format Hashtbl List Printf Ssd Ssd_automata String
