lib/schema/infer.mli: Gschema Ssd
