lib/schema/gschema.mli: Format Ssd Ssd_automata
