lib/schema/dataguide.ml: Array Hashtbl List Map Option Ssd
