lib/schema/ro.mli: Ssd
