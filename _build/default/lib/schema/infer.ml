module Graph = Ssd.Graph
module Label = Ssd.Label
module Lpred = Ssd_automata.Lpred

(* Quotienting the raw data by k-bisimulation keeps every distinct title
   string in its own class.  Schema inference therefore abstracts first:
   base (non-symbol) labels are replaced by their type name, the
   abstracted graph is quotiented, and the schema edges generalize the
   original labels observed between each pair of classes. *)

let abstract_label l =
  if Label.is_sym l then l else Label.Sym ("#" ^ Label.type_name l)

let infer ?(k = 4) ?(generalize_threshold = 2) g =
  (* map_labels preserves node ids and topology, so the Ro classes of the
     abstracted graph index the ε-eliminated original 1:1. *)
  let ro = Ro.build ~k (Graph.map_labels abstract_label g) in
  let data = Graph.eps_eliminate g in
  assert (Graph.n_nodes data = Graph.n_nodes (Ro.data ro));
  let q = Ro.graph ro in
  let b = Gschema.Builder.create () in
  for _ = 1 to Graph.n_nodes q do
    ignore (Gschema.Builder.add_node b)
  done;
  (* Collect original labels per (class, class) pair. *)
  let edge_labels : (int * int, Label.t list) Hashtbl.t = Hashtbl.create 256 in
  Graph.fold_labeled_edges
    (fun () u l v ->
      let key = (Ro.class_of ro u, Ro.class_of ro v) in
      Hashtbl.replace edge_labels key
        (l :: Option.value ~default:[] (Hashtbl.find_opt edge_labels key)))
    () data;
  Hashtbl.iter
    (fun (cu, cv) labels ->
      let labels = List.sort_uniq Label.compare labels in
      let symbols, bases = List.partition Label.is_sym labels in
      List.iter (fun l -> Gschema.Builder.add_edge b cu (Lpred.Exact l) cv) symbols;
      if bases <> [] then
        if List.length bases > generalize_threshold then begin
          let types = List.sort_uniq String.compare (List.map Label.type_name bases) in
          List.iter (fun t -> Gschema.Builder.add_edge b cu (Lpred.Of_type t) cv) types
        end
        else List.iter (fun l -> Gschema.Builder.add_edge b cu (Lpred.Exact l) cv) bases)
    edge_labels;
  Gschema.Builder.set_root b (Graph.root q);
  Gschema.Builder.finish b

let schema_size ~k g =
  Graph.n_nodes (Ro.graph (Ro.build ~k (Graph.map_labels abstract_label g)))
