(** Approximate schema extraction ("or to discover" structure, section 5).

    From a data graph we build a {!Gschema.t} the data provably conforms
    to:

    + base (non-symbol) labels are abstracted to their type names, so two
      title nodes differing only in their strings land in one class;
    + the abstracted graph is quotiented by k-bounded bisimulation
      ({!Ro});
    + quotient edges become predicates: symbols stay exact; when more
      than [generalize_threshold] distinct base labels connect the same
      pair of classes they generalize to type tests ([#int], [#string],
      ...) — "every title string we saw" becomes "titles are strings".

    The soundness guarantee [Gschema.conforms data (infer data)] is
    property-tested. *)

val infer : ?k:int -> ?generalize_threshold:int -> Ssd.Graph.t -> Gschema.t

(** Number of schema nodes {!infer} would produce at this [k] (used by the
    experiments to sweep [k] cheaply). *)
val schema_size : k:int -> Ssd.Graph.t -> int
