module Graph = Ssd.Graph
module Label = Ssd.Label

type t = {
  data : Graph.t;
  class_of : int array;
  graph : Graph.t;
}

let signature g block u =
  Graph.labeled_succ g u
  |> List.map (fun (l, v) -> (l, block.(v)))
  |> List.sort_uniq (fun (l1, b1) (l2, b2) ->
         let c = Label.compare l1 l2 in
         if c <> 0 then c else Stdlib.compare b1 b2)

let build ~k g =
  let g = Graph.eps_eliminate g in
  let n = Graph.n_nodes g in
  let block = Array.make n 0 in
  (* k rounds of refinement = k-bounded bisimulation. *)
  let continue = ref true in
  let round = ref 0 in
  while !continue && !round < k do
    incr round;
    let table = Hashtbl.create n in
    let next = ref 0 in
    let new_block = Array.make n 0 in
    for u = 0 to n - 1 do
      let key = (block.(u), signature g block u) in
      match Hashtbl.find_opt table key with
      | Some b -> new_block.(u) <- b
      | None ->
        Hashtbl.add table key !next;
        new_block.(u) <- !next;
        incr next
    done;
    let n_old = Array.fold_left (fun acc b -> max acc (b + 1)) 0 block in
    if !next = n_old then continue := false;
    Array.blit new_block 0 block 0 n
  done;
  let n_blocks = Array.fold_left (fun acc b -> max acc (b + 1)) 0 block in
  let b = Graph.Builder.create () in
  for _ = 1 to n_blocks do
    ignore (Graph.Builder.add_node b)
  done;
  (* The quotient keeps the union of edges of each class, so every data
     path survives (the RO soundness property). *)
  let edge_set = Hashtbl.create 256 in
  Graph.fold_labeled_edges
    (fun () u l v ->
      let key = (block.(u), l, block.(v)) in
      if not (Hashtbl.mem edge_set key) then begin
        Hashtbl.add edge_set key ();
        Graph.Builder.add_edge b block.(u) l block.(v)
      end)
    () g;
  Graph.Builder.set_root b block.(Graph.root g);
  { data = g; class_of = block; graph = Graph.gc (Graph.Builder.finish b) }

let graph ro = ro.graph
let class_of ro u = ro.class_of.(u)
let data ro = ro.data
let n_classes ro = Graph.n_nodes ro.graph

let has_path ro path =
  let rec go us = function
    | [] -> true
    | l :: rest ->
      let next =
        List.concat_map
          (fun u ->
            List.filter_map
              (fun (l', v) -> if Label.equal l l' then Some v else None)
              (Graph.labeled_succ ro.graph u))
          us
        |> List.sort_uniq compare
      in
      next <> [] && go next rest
  in
  go [ Graph.root ro.graph ] path
