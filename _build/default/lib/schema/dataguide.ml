module Graph = Ssd.Graph
module Label = Ssd.Label

module Label_map = Map.Make (struct
  type t = Label.t

  let compare = Label.compare
end)

type t = {
  graph : Graph.t;
  targets : int list array;
}

let build g =
  (* Subset construction over ε-closed labeled successors. *)
  let ids : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let b = Graph.Builder.create () in
  let target_acc = ref [] in
  let intern set =
    match Hashtbl.find_opt ids set with
    | Some id -> (id, false)
    | None ->
      let id = Graph.Builder.add_node b in
      Hashtbl.add ids set id;
      target_acc := (id, set) :: !target_acc;
      (id, true)
  in
  let rec explore set id =
    (* Group successors of the whole set by label. *)
    let by_label =
      List.fold_left
        (fun m u ->
          List.fold_left
            (fun m (l, v) ->
              let old = Option.value ~default:[] (Label_map.find_opt l m) in
              Label_map.add l (v :: old) m)
            m (Graph.labeled_succ g u))
        Label_map.empty set
    in
    Label_map.iter
      (fun l vs ->
        let vs = List.sort_uniq compare vs in
        let vid, fresh = intern vs in
        Graph.Builder.add_edge b id l vid;
        if fresh then explore vs vid)
      by_label
  in
  let root_set = [ Graph.root g ] in
  let root_id, _ = intern root_set in
  Graph.Builder.set_root b root_id;
  explore root_set root_id;
  let guide = Graph.Builder.finish b in
  let targets = Array.make (Graph.n_nodes guide) [] in
  List.iter (fun (id, set) -> targets.(id) <- set) !target_acc;
  { graph = guide; targets }

let graph dg = dg.graph
let targets dg u = dg.targets.(u)
let n_nodes dg = Graph.n_nodes dg.graph

let follow dg path =
  let rec go u = function
    | [] -> Some u
    | l :: rest -> (
      match
        List.find_opt (fun (l', _) -> Label.equal l l') (Graph.labeled_succ dg.graph u)
      with
      | Some (_, v) -> go v rest
      | None -> None)
  in
  go (Graph.root dg.graph) path

let find dg path =
  match follow dg path with
  | Some u -> targets dg u
  | None -> []

let paths dg ~max_len =
  let out = ref [] in
  let rec go u prefix len =
    out := List.rev prefix :: !out;
    if len < max_len then
      List.iter (fun (l, v) -> go v (l :: prefix) (len + 1)) (Graph.labeled_succ dg.graph u)
  in
  go (Graph.root dg.graph) [] 0;
  List.rev !out
