(** k-representative objects (Nestorov–Ullman–Wiener–Chawathe, ICDE'97;
    section 5's "concise representations of semistructured hierarchical
    data").

    The k-RO summarizes a data graph by merging nodes that look alike up
    to depth [k]: we realize it as the quotient by k-bounded bisimulation
    (k rounds of partition refinement), which degenerates to the full
    bisimulation minimization of {!Ssd.Bisim} as [k → ∞].  Small [k] gives
    smaller, lossier summaries — the size/accuracy dial measured in
    experiment E7. *)

type t

val build : k:int -> Ssd.Graph.t -> t

(** The quotient graph (the representative object itself). *)
val graph : t -> Ssd.Graph.t

(** Class (= quotient node) of each data node.  Indices refer to the
    ε-eliminated data graph returned by {!data}. *)
val class_of : t -> int -> int

(** The ε-eliminated copy of the data the classes index into. *)
val data : t -> Ssd.Graph.t

val n_classes : t -> int

(** Every label path of length ≤ k in the data occurs in the k-RO
    (soundness half of the RO property; property-tested). *)
val has_path : t -> Ssd.Label.t list -> bool
