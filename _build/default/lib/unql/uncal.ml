module Graph = Ssd.Graph
module Label = Ssd.Label

(* Representation: a plain graph plus marker maps.  Output-marker nodes
   must have no outgoing edges; wiring is by ε-edges, which the value
   semantics (labeled_succ / bisimulation) absorbs. *)
type t = {
  g : Graph.t;
  ins : (string * int) list; (* input marker -> node, in declaration order *)
  outs : (int * string) list; (* hole node -> output marker *)
}

let amp = "&"

let inputs t = List.map fst t.ins
let outputs t = List.sort_uniq String.compare (List.map snd t.outs)

let input_node t name =
  match List.assoc_opt name t.ins with
  | Some n -> n
  | None -> raise Not_found

(* Rebuild [parts] into one builder; returns per-part node offsets. *)
let combine parts k =
  let b = Graph.Builder.create () in
  let offsets =
    List.map
      (fun part ->
        let r = Graph.import_into b part.g in
        r - Graph.root part.g)
      parts
  in
  k b offsets

let empty =
  { g = Graph.empty; ins = [ (amp, Graph.root Graph.empty) ]; outs = [] }

let mark y =
  (* one node that is both the input and the hole *)
  let g = Graph.empty in
  { g; ins = [ (amp, Graph.root g) ]; outs = [ (Graph.root g, y) ] }

let inject ?(input = amp) g = { g; ins = [ (input, Graph.root g) ]; outs = [] }

let label l t =
  let n = input_node t amp in
  combine [ t ] (fun b -> function
    | [ off ] ->
      let root = Graph.Builder.add_node b in
      Graph.Builder.add_edge b root l (n + off);
      Graph.Builder.set_root b root;
      {
        g = Graph.Builder.finish b;
        ins = [ (amp, root) ];
        outs = List.map (fun (u, y) -> (u + off, y)) t.outs;
      }
    | _ -> assert false)

let union a b0 =
  let na = input_node a amp and nb = input_node b0 amp in
  combine [ a; b0 ] (fun b -> function
    | [ offa; offb ] ->
      let root = Graph.Builder.add_node b in
      Graph.Builder.add_eps b root (na + offa);
      Graph.Builder.add_eps b root (nb + offb);
      Graph.Builder.set_root b root;
      {
        g = Graph.Builder.finish b;
        ins = [ (amp, root) ];
        outs =
          List.map (fun (u, y) -> (u + offa, y)) a.outs
          @ List.map (fun (u, y) -> (u + offb, y)) b0.outs;
      }
    | _ -> assert false)

let rename_inputs f t = { t with ins = List.map (fun (x, n) -> (f x, n)) t.ins }
let rename_outputs f t = { t with outs = List.map (fun (n, y) -> (n, f y)) t.outs }

let append t1 t2 =
  combine [ t1; t2 ] (fun b -> function
    | [ off1; off2 ] ->
      (* wire t1's holes into t2's inputs; unmatched holes close to {} *)
      let kept_outs = ref [] in
      List.iter
        (fun (hole, y) ->
          match List.assoc_opt y t2.ins with
          | Some n -> Graph.Builder.add_eps b (hole + off1) (n + off2)
          | None -> ())
        t1.outs;
      ignore kept_outs;
      (* the root is t1's first input (or node 0 if none) *)
      (match t1.ins with
       | (_, n) :: _ -> Graph.Builder.set_root b (n + off1)
       | [] -> ());
      {
        g = Graph.Builder.finish b;
        ins = List.map (fun (x, n) -> (x, n + off1)) t1.ins;
        outs = List.map (fun (u, y) -> (u + off2, y)) t2.outs;
      }
    | _ -> assert false)

let cycle t =
  combine [ t ] (fun b -> function
    | [ off ] ->
      let remaining =
        List.filter
          (fun (hole, y) ->
            match List.assoc_opt y t.ins with
            | Some n ->
              Graph.Builder.add_eps b (hole + off) (n + off);
              false
            | None -> true)
          t.outs
      in
      (match t.ins with
       | (_, n) :: _ -> Graph.Builder.set_root b (n + off)
       | [] -> ());
      {
        g = Graph.Builder.finish b;
        ins = List.map (fun (x, n) -> (x, n + off)) t.ins;
        outs = List.map (fun (u, y) -> (u + off, y)) remaining;
      }
    | _ -> assert false)

let to_graph ?(input = amp) t =
  let n = input_node t input in
  (* reroot at the requested input; unmatched output holes are childless
     nodes already, i.e. {} — nothing to do *)
  let b = Graph.Builder.create () in
  let off =
    let r = Graph.import_into b t.g in
    r - Graph.root t.g
  in
  Graph.Builder.set_root b (n + off);
  Graph.gc (Graph.Builder.finish b)

let equal a b =
  List.sort compare (inputs a) = List.sort compare (inputs b)
  && List.for_all
       (fun x -> Ssd.Bisim.equal (to_graph ~input:x a) (to_graph ~input:x b))
       (inputs a)

let pp fmt t =
  Format.fprintf fmt "@[<v>inputs: %s@,outputs: %s@,%s@]"
    (String.concat ", " (inputs t))
    (String.concat ", " (outputs t))
    (Graph.to_string (to_graph ~input:(fst (List.hd t.ins)) t))
