(** Printer for UnQL ASTs; emits the concrete syntax of {!Parser}. *)

module Label = Ssd.Label
module Lpred = Ssd_automata.Lpred
module Regex = Ssd_automata.Regex
open Ast

let pp_label_expr fmt = function
  | Llit l -> Label.pp fmt l
  | Lname x -> Format.pp_print_string fmt x

let pp_step fmt = function
  | Slit le -> pp_label_expr fmt le
  | Sbind x -> Format.fprintf fmt "\\%s" x
  | Spred p -> Lpred.pp fmt p
  | Sregex (r, None) -> Format.fprintf fmt "<%a>" Regex.pp r
  | Sregex (r, Some p) -> Format.fprintf fmt "<%a> as \\%s" Regex.pp r p

let pp_steps fmt steps =
  List.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_char fmt '.';
      pp_step fmt s)
    steps

let rec pp_pattern fmt = function
  | Pbind x -> Format.fprintf fmt "\\%s" x
  | Pany -> Format.pp_print_char fmt '_'
  | Pedges entries ->
    Format.fprintf fmt "{";
    List.iteri
      (fun i (steps, sub) ->
        if i > 0 then Format.fprintf fmt ", ";
        pp_steps fmt steps;
        match sub with
        | Pany -> ()
        | sub -> Format.fprintf fmt ": %a" pp_pattern sub)
      entries;
    Format.fprintf fmt "}"

let pp_atom fmt = function
  | Alit l -> Label.pp fmt l
  | Aname x -> Format.pp_print_string fmt x

let cmpop_name = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_cond fmt = function
  | Ccmp (op, a1, a2) -> Format.fprintf fmt "%a %s %a" pp_atom a1 (cmpop_name op) pp_atom a2
  | Cistype (t, a) -> Format.fprintf fmt "is%s(%a)" t pp_atom a
  | Cstarts (a, s) -> Format.fprintf fmt "startswith(%a, %a)" pp_atom a Label.pp (Label.Str s)
  | Ccontains (a, s) -> Format.fprintf fmt "contains(%a, %a)" pp_atom a Label.pp (Label.Str s)
  | Cempty e -> Format.fprintf fmt "isempty(%a)" pp_expr e
  | Cequal (e1, e2) -> Format.fprintf fmt "equal(%a, %a)" pp_expr e1 pp_expr e2
  | Cnot c -> Format.fprintf fmt "not (%a)" pp_cond c
  | Cand (c1, c2) -> Format.fprintf fmt "(%a and %a)" pp_cond c1 pp_cond c2
  | Cor (c1, c2) -> Format.fprintf fmt "(%a or %a)" pp_cond c1 pp_cond c2

and pp_clause fmt = function
  | Gen (p, e) -> Format.fprintf fmt "%a <- %a" pp_pattern p pp_expr e
  | Where c -> pp_cond fmt c

and pp_expr fmt = function
  | Empty -> Format.pp_print_string fmt "{}"
  | Db -> Format.pp_print_string fmt "DB"
  | Var x -> Format.pp_print_string fmt x
  | Tree entries ->
    Format.fprintf fmt "@[<hv 1>{";
    List.iteri
      (fun i (le, e) ->
        if i > 0 then Format.fprintf fmt ",@ ";
        match e with
        | Empty -> pp_label_expr fmt le
        | e -> Format.fprintf fmt "%a: %a" pp_label_expr le pp_expr e)
      entries;
    Format.fprintf fmt "}@]"
  | Union (a, b) -> Format.fprintf fmt "(%a union %a)" pp_expr a pp_expr b
  | Select (head, clauses) ->
    Format.fprintf fmt "@[<hv 2>select %a@ where " pp_expr head;
    List.iteri
      (fun i c ->
        if i > 0 then Format.fprintf fmt ",@ ";
        pp_clause fmt c)
      clauses;
    Format.fprintf fmt "@]"
  | If (c, a, b) ->
    Format.fprintf fmt "@[<hv 2>if %a@ then %a@ else %a@]" pp_cond c pp_expr a pp_expr b
  | Let (x, a, b) -> Format.fprintf fmt "@[<hv>let %s = %a in@ %a@]" x pp_expr a pp_expr b
  | Letsfun (def, e) ->
    Format.fprintf fmt "@[<hv>let sfun ";
    List.iteri
      (fun i c ->
        if i > 0 then Format.fprintf fmt "@ | ";
        Format.fprintf fmt "%s({%a: %s}) = %a" def.fname pp_step c.cstep c.ctree pp_expr
          c.cbody)
      def.cases;
    Format.fprintf fmt "@ in %a@]" pp_expr e
  | App (f, arg) -> Format.fprintf fmt "%s(%a)" f pp_expr arg

let expr_to_string e = Format.asprintf "%a" pp_expr e
let pattern_to_string p = Format.asprintf "%a" pp_pattern p
