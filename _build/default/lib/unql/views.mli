(** Named views over a semistructured database.

    Section 3 notes that "some simple forms of restructuring are also
    present in a view definition language" (Abiteboul et al., Views for
    semistructured data).  A view here is a named UnQL query; queries can
    refer to earlier views by name, and evaluation materializes the chain
    by desugaring into nested [let]s — so a view sees the database plus
    every view defined before it.

    {[
      let reg =
        Views.(empty
          |> define ~name:"films"   {| select {film: m} where {entry.movie: \m} <- DB |}
          |> define ~name:"titles"  {| select {t: \t} where {film.title: \t} <- films |})
      in
      Views.run reg ~db "select x where {t: \\x} <- titles"
    ]} *)

type t

val empty : t

(** [define reg ~name src] parses [src] and appends the view.  Later
    views and queries can mention [name] as a variable.
    @raise Unql.Parser.Parse_error on bad source.
    @raise Invalid_argument if [name] is already defined. *)
val define : name:string -> string -> t -> t

(** Defined view names, in definition order. *)
val names : t -> string list

(** Materialize one view against a database.
    @raise Not_found if undefined. *)
val materialize : t -> db:Ssd.Graph.t -> string -> Ssd.Graph.t

(** Evaluate a query that may mention any defined view. *)
val run : t -> db:Ssd.Graph.t -> string -> Ssd.Graph.t

(** The desugared expression [let v1 = e1 in ... in q] (exposed so the
    optimizer and tests can inspect what evaluation sees). *)
val desugar : t -> Ast.expr -> Ast.expr
