(** The UnCAL graph algebra: graphs with input and output markers.

    UnQL's formal basis (Buneman–Davidson–Hillebrand–Suciu, SIGMOD'96)
    builds graphs from a small algebra whose "horizontal" constructors
    are ε-free tree constructors and union, and whose "vertical" ones are
    {e markers}: an {e output marker} [&y] is a hole at a leaf; an
    {e input marker} names an entry point; [append] ([t1 @ t2]) plugs
    [t2]'s inputs into [t1]'s matching holes; [cycle] plugs a graph's own
    holes into its own inputs, closing loops.  Structural recursion is
    definable from these — this module provides the algebra itself and
    the laws the calculus satisfies, property-tested up to bisimilarity:

    - [append] is associative;
    - [mark y @ t ≈ t at input y] (markers are the units of [@]);
    - [@] distributes over [union] on the left;
    - [cycle t ≈ t @ cycle t] (the fixpoint unrolling law).

    Values are compared through {!to_graph}, which closes unmatched
    output markers to [{}] (the UnCAL convention). *)

type t

(** Input marker names of [t], in declaration order. *)
val inputs : t -> string list

(** Output marker names occurring in [t] (duplicates collapsed). *)
val outputs : t -> string list

(** {1 Constructors} *)

(** The default input marker, ["&"]. *)
val amp : string

(** [{}] with a single input [&]. *)
val empty : t

(** [mark y]: the graph that is just the output marker [&y] (a hole). *)
val mark : string -> t

(** [label l t]: [{l: t}] — [t] must have the single input [&];
    its outputs pass through. *)
val label : Ssd.Label.t -> t -> t

(** [union a b]: tree union at the (shared single) input [&]. *)
val union : t -> t -> t

(** [inject ~input g]: a plain graph as an UnCAL graph with one input and
    no outputs. *)
val inject : ?input:string -> Ssd.Graph.t -> t

(** [rename_inputs f t] / [rename_outputs f t]. *)
val rename_inputs : (string -> string) -> t -> t

val rename_outputs : (string -> string) -> t -> t

(** [append t1 t2] ([t1 @ t2]): each output hole [&y] of [t1] is wired
    (by ε) to [t2]'s input [&y]; inputs are [t1]'s, outputs are [t2]'s.
    Outputs of [t1] with no matching input in [t2] are dropped (closed to
    [{}]). *)
val append : t -> t -> t

(** [cycle t]: wire each output hole [&y] of [t] to [t]'s own input [&y]
    when it exists; such outputs disappear, the rest remain. *)
val cycle : t -> t

(** {1 Observation} *)

(** The plain graph at input [input] (default [&]); unmatched output
    markers become [{}].
    @raise Not_found if the input marker does not exist. *)
val to_graph : ?input:string -> t -> Ssd.Graph.t

(** Bisimilarity at every input marker (inputs must coincide as sets). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
