module Label = Ssd.Label
module Regex = Ssd_automata.Regex
module Nfa = Ssd_automata.Nfa
module Dfa = Ssd_automata.Dfa
module Dataguide = Ssd_schema.Dataguide
open Ast

(* Label names a condition reads.  Unbound names resolve to symbol
   literals, so a name that no generator binds is still safe to evaluate
   early. *)
let rec cond_names = function
  | Ccmp (_, a1, a2) -> atom_names a1 @ atom_names a2
  | Cistype (_, a) | Cstarts (a, _) | Ccontains (a, _) -> atom_names a
  | Cempty e -> expr_names e
  | Cequal (e1, e2) -> expr_names e1 @ expr_names e2
  | Cnot c -> cond_names c
  | Cand (c1, c2) | Cor (c1, c2) -> cond_names c1 @ cond_names c2

and atom_names = function
  | Alit _ -> []
  | Aname x -> [ x ]

and expr_names e = free_tree_vars e

let reorder_clauses clauses =
  let generators = List.filter_map (function Gen _ as g -> Some g | Where _ -> None) clauses in
  let conditions = List.filter_map (function Where c -> Some c | Gen _ -> None) clauses in
  (* For each condition find the shortest generator prefix after which all
     the names it mentions that are bound anywhere are available. *)
  let all_bound =
    List.concat_map (function Gen (p, _) -> pattern_binders p | Where _ -> []) clauses
  in
  let placed = Array.make (List.length generators + 1) [] in
  List.iter
    (fun c ->
      let needed = List.filter (fun x -> List.mem x all_bound) (cond_names c) in
      let rec position i bound gens =
        if List.for_all (fun x -> List.mem x bound) needed then i
        else
          match gens with
          | [] -> i
          | Gen (p, _) :: rest -> position (i + 1) (pattern_binders p @ bound) rest
          | Where _ :: _ -> assert false
      in
      let i = position 0 [] generators in
      placed.(i) <- c :: placed.(i))
    conditions;
  let rec weave i gens =
    let here = List.rev_map (fun c -> Where c) placed.(i) in
    match gens with
    | [] -> here
    | g :: rest -> here @ (g :: weave (i + 1) rest)
  in
  weave 0 generators

let rec map_selects f = function
  | (Empty | Db | Var _) as e -> e
  | Tree entries -> Tree (List.map (fun (le, e) -> (le, map_selects f e)) entries)
  | Union (a, b) -> Union (map_selects f a, map_selects f b)
  | Select (head, clauses) ->
    let head = map_selects f head in
    let clauses =
      List.map
        (function
          | Gen (p, e) -> Gen (p, map_selects f e)
          | Where c -> Where (map_selects_cond f c))
        clauses
    in
    f (Select (head, clauses))
  | If (c, a, b) -> If (map_selects_cond f c, map_selects f a, map_selects f b)
  | Let (x, a, b) -> Let (x, map_selects f a, map_selects f b)
  | Letsfun (def, e) ->
    let def =
      { def with cases = List.map (fun c -> { c with cbody = map_selects f c.cbody }) def.cases }
    in
    Letsfun (def, map_selects f e)
  | App (g, arg) -> App (g, map_selects f arg)

and map_selects_cond f = function
  | (Ccmp _ | Cistype _ | Cstarts _ | Ccontains _) as c -> c
  | Cempty e -> Cempty (map_selects f e)
  | Cequal (a, b) -> Cequal (map_selects f a, map_selects f b)
  | Cnot c -> Cnot (map_selects_cond f c)
  | Cand (a, b) -> Cand (map_selects_cond f a, map_selects_cond f b)
  | Cor (a, b) -> Cor (map_selects_cond f a, map_selects_cond f b)

let reorder e =
  map_selects
    (function
      | Select (head, clauses) -> Select (head, reorder_clauses clauses)
      | e -> e)
    e

let automaton_sizes ~alphabet e =
  let out = ref [] in
  let record r =
    let nfa = Nfa.of_regex r in
    let dfa = Dfa.minimize (Dfa.of_nfa ~alphabet nfa) in
    out := (Regex.to_string r, nfa.Nfa.n, Dfa.n_states dfa) :: !out
  in
  let record_steps =
    List.iter (function Sregex (r, _) -> record r | Slit _ | Sbind _ | Spred _ -> ())
  in
  let rec go_pattern = function
    | Pbind _ | Pany -> ()
    | Pedges entries ->
      List.iter
        (fun (steps, sub) ->
          record_steps steps;
          go_pattern sub)
        entries
  in
  ignore
    (map_selects
       (function
         | Select (_, clauses) as s ->
           List.iter (function Gen (p, _) -> go_pattern p | Where _ -> ()) clauses;
           s
         | e -> e)
       e);
  List.rev !out

(* A generator is a provably-empty path when its steps are all literal
   labels (closed: symbol names only) and the guide rejects the path. *)
let literal_path steps =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Slit (Llit l) :: rest -> go (l :: acc) rest
    | Slit (Lname x) :: rest -> go (Label.Sym x :: acc) rest
    | (Sbind _ | Spred _ | Sregex _) :: _ -> None
  in
  go [] steps

let prune_with_guide guide e =
  let pruned = ref 0 in
  (* Lname steps are only literals if no generator of the select binds
     that name as a label variable. *)
  let impossible bound = function
    | Gen (Pedges entries, Db) ->
      List.exists
        (fun (steps, _) ->
          match literal_path steps with
          | Some path ->
            let closed =
              List.for_all2
                (fun step l ->
                  match step, l with
                  | Slit (Lname x), _ -> not (List.mem x bound)
                  | _ -> true)
                steps path
            in
            closed && Dataguide.follow guide path = None
          | None -> false)
        entries
    | Gen _ | Where _ -> false
  in
  let e =
    map_selects
      (function
        | Select (_, clauses) as s ->
          let bound =
            List.concat_map
              (function Gen (p, _) -> pattern_binders p | Where _ -> [])
              clauses
          in
          if List.exists (impossible bound) clauses then begin
            incr pruned;
            Empty
          end
          else s
        | e -> e)
      e
  in
  (e, !pruned)
