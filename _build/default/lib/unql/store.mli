(** The evaluator's node store: a growing graph arena.

    Query evaluation works over a single append-only edge-labeled graph
    that starts with the database (imported once, shared) and grows as
    constructors allocate result nodes.  Tree values are plain node ids,
    so subtree references are O(1) and fully shared — no copying, and
    cyclic values cost nothing extra.  {!to_graph} snapshots the part
    reachable from a result node back into an immutable {!Ssd.Graph.t}. *)

type t

val create : unit -> t

(** Import an immutable graph; returns the store id of its root.  Import
    is memoized on physical identity, so referring to the database many
    times costs one copy. *)
val import : t -> Ssd.Graph.t -> int

val add_node : t -> int
val add_edge : t -> int -> Ssd.Label.t -> int -> unit
val add_eps : t -> int -> int -> unit
val n_nodes : t -> int

(** Outgoing labeled edges through ε-closure (the tree semantics view). *)
val labeled_succ : t -> int -> (Ssd.Label.t * int) list

(** Raw successors (ε-edges visible). *)
val succ : t -> int -> (Ssd.Graph.edge_label * int) list

(** Snapshot the subgraph reachable from [root] as an immutable graph. *)
val to_graph : t -> root:int -> Ssd.Graph.t
