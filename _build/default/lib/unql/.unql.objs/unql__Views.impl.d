lib/unql/views.ml: Ast Eval List Parser Printf
