lib/unql/uncal.ml: Format List Ssd String
