lib/unql/store.ml: Array Hashtbl List Ssd
