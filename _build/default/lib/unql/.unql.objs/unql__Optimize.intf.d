lib/unql/optimize.mli: Ast Ssd Ssd_schema
