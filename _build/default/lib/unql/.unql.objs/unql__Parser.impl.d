lib/unql/parser.ml: Ast Buffer List Option Printf Ssd Ssd_automata String
