lib/unql/ast.ml: List Printf Set Ssd Ssd_automata String
