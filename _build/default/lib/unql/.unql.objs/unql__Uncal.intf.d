lib/unql/uncal.mli: Format Ssd
