lib/unql/eval.mli: Ast Ssd Ssd_schema
