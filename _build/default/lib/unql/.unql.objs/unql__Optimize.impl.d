lib/unql/optimize.ml: Array Ast List Ssd Ssd_automata Ssd_schema
