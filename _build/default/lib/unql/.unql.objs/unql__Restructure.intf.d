lib/unql/restructure.mli: Ssd
