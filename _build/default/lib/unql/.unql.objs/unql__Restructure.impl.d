lib/unql/restructure.ml: List Printf Ssd
