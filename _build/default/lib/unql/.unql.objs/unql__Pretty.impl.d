lib/unql/pretty.ml: Ast Format List Ssd Ssd_automata
