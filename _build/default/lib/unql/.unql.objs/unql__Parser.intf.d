lib/unql/parser.mli: Ast
