lib/unql/eval.ml: Array Ast Hashtbl List Map Optimize Parser Printf Queue Ssd Ssd_automata Ssd_schema Stdlib Store String
