lib/unql/store.mli: Ssd
