lib/unql/views.mli: Ast Ssd
