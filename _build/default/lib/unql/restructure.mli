(** The deep restructuring operations of section 3, as direct graph
    transformations.

    "Simple examples of such operations include deleting/collapsing edges
    with a certain property, relabeling edges, or performing local
    interchanges ... adding new edges to "short-circuit" various paths."

    Each operation here is also expressible as an [sfun] query (see
    {!val:as_query}); the test suite checks the two agree up to
    bisimilarity, and experiment E4 benches them against each other.  All
    operations are total on cyclic graphs. *)

(** [relabel f g] replaces each edge label [l] by [f l]. *)
val relabel : (Ssd.Label.t -> Ssd.Label.t) -> Ssd.Graph.t -> Ssd.Graph.t

(** [delete_edges p g] removes every edge whose label satisfies [p],
    together with whatever becomes unreachable. *)
val delete_edges : (Ssd.Label.t -> bool) -> Ssd.Graph.t -> Ssd.Graph.t

(** [collapse_edges p g] splices out matching edges: the edge disappears
    but its target's contents are inlined (the edge becomes an ε-edge). *)
val collapse_edges : (Ssd.Label.t -> bool) -> Ssd.Graph.t -> Ssd.Graph.t

(** [short_circuit ~first ~second ~via g] adds, for every path
    [u --first--> _ --second--> w], a direct edge [u --via--> w]. *)
val short_circuit :
  first:Ssd.Label.t -> second:Ssd.Label.t -> via:Ssd.Label.t -> Ssd.Graph.t -> Ssd.Graph.t

(** The same operations as UnQL source text (taking the place of hand
    written queries in examples and tests). *)
module As_query : sig
  (** [relabel ~from_ ~to_]: rename symbol [from_] to symbol [to_]. *)
  val relabel : from_:string -> to_:string -> string

  (** [delete ~label]: drop edges labeled with symbol [label]. *)
  val delete : label:string -> string

  (** [collapse ~label]: splice out edges labeled with symbol [label]. *)
  val collapse : label:string -> string
end
