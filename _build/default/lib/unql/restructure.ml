module Graph = Ssd.Graph
module Label = Ssd.Label

let relabel f g = Graph.map_labels f g

let rebuild g keep =
  (* Copy g, applying [keep] to each labeled edge: [`Keep] keeps it,
     [`Drop] removes it, [`Splice] turns it into an ε-edge. *)
  let b = Graph.Builder.create () in
  for _ = 1 to Graph.n_nodes g do
    ignore (Graph.Builder.add_node b)
  done;
  Graph.fold_edges
    (fun () u l v ->
      match l with
      | Graph.Eps -> Graph.Builder.add_eps b u v
      | Graph.Lab l -> (
        match keep l with
        | `Keep -> Graph.Builder.add_edge b u l v
        | `Drop -> ()
        | `Splice -> Graph.Builder.add_eps b u v))
    () g;
  Graph.Builder.set_root b (Graph.root g);
  Graph.gc (Graph.Builder.finish b)

let delete_edges p g = rebuild g (fun l -> if p l then `Drop else `Keep)

let collapse_edges p g = rebuild g (fun l -> if p l then `Splice else `Keep)

let short_circuit ~first ~second ~via g =
  let b = Graph.Builder.create () in
  for _ = 1 to Graph.n_nodes g do
    ignore (Graph.Builder.add_node b)
  done;
  Graph.fold_edges
    (fun () u l v ->
      match l with
      | Graph.Eps -> Graph.Builder.add_eps b u v
      | Graph.Lab l -> Graph.Builder.add_edge b u l v)
    () g;
  for u = 0 to Graph.n_nodes g - 1 do
    List.iter
      (fun (l1, mid) ->
        if Label.equal l1 first then
          List.iter
            (fun (l2, w) -> if Label.equal l2 second then Graph.Builder.add_edge b u via w)
            (Graph.labeled_succ g mid))
      (Graph.labeled_succ g u)
  done;
  Graph.Builder.set_root b (Graph.root g);
  Graph.gc (Graph.Builder.finish b)

module As_query = struct
  let relabel ~from_ ~to_ =
    Printf.sprintf
      "let sfun f({%s: T}) = {%s: f(T)} | f({\\L: T}) = {L: f(T)} in f(DB)" from_ to_

  let delete ~label =
    Printf.sprintf "let sfun f({%s: T}) = {} | f({\\L: T}) = {L: f(T)} in f(DB)" label

  let collapse ~label =
    Printf.sprintf "let sfun f({%s: T}) = f(T) | f({\\L: T}) = {L: f(T)} in f(DB)" label
end
