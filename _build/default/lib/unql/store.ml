module Graph = Ssd.Graph
module Label = Ssd.Label

type t = {
  mutable out : (Graph.edge_label * int) list array; (* reversed adjacency *)
  mutable n : int;
  mutable imported : (Graph.t * int) list; (* physical identity -> offset *)
}

let create () = { out = Array.make 64 []; n = 0; imported = [] }

let ensure_capacity st needed =
  if needed > Array.length st.out then begin
    let cap = ref (Array.length st.out) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let fresh = Array.make !cap [] in
    Array.blit st.out 0 fresh 0 st.n;
    st.out <- fresh
  end

let add_node st =
  ensure_capacity st (st.n + 1);
  let id = st.n in
  st.n <- st.n + 1;
  id

let add_raw_edge st u l v =
  assert (u >= 0 && u < st.n && v >= 0 && v < st.n);
  st.out.(u) <- (l, v) :: st.out.(u)

let add_edge st u l v = add_raw_edge st u (Graph.Lab l) v
let add_eps st u v = add_raw_edge st u Graph.Eps v

let n_nodes st = st.n

let import st g =
  match List.find_opt (fun (g', _) -> g' == g) st.imported with
  | Some (_, offset) -> Graph.root g + offset
  | None ->
    let offset = st.n in
    ensure_capacity st (st.n + Graph.n_nodes g);
    st.n <- st.n + Graph.n_nodes g;
    Graph.fold_edges
      (fun () u l v -> add_raw_edge st (u + offset) l (v + offset))
      () g;
    st.imported <- (g, offset) :: st.imported;
    Graph.root g + offset

let succ st u = List.rev st.out.(u)

let labeled_succ st u =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec close u =
    if not (Hashtbl.mem seen u) then begin
      Hashtbl.add seen u ();
      List.iter
        (fun (l, v) ->
          match l with
          | Graph.Eps -> close v
          | Graph.Lab l -> acc := (l, v) :: !acc)
        st.out.(u)
    end
  in
  close u;
  List.rev !acc

let to_graph st ~root =
  let b = Graph.Builder.create () in
  let map = Hashtbl.create 64 in
  let rec copy u =
    match Hashtbl.find_opt map u with
    | Some id -> id
    | None ->
      let id = Graph.Builder.add_node b in
      Hashtbl.add map u id;
      List.iter
        (fun (l, v) ->
          let vid = copy v in
          match l with
          | Graph.Eps -> Graph.Builder.add_eps b id vid
          | Graph.Lab l -> Graph.Builder.add_edge b id l vid)
        (succ st u);
      id
  in
  let r = copy root in
  Graph.Builder.set_root b r;
  Graph.Builder.finish b
