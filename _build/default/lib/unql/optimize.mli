(** Algebraic query rewrites (section 4).

    The optimizations here are the AST-level ones the tutorial attributes
    to the relational tradition: pushing selections toward the generators
    that bind their variables, and pre-compiling / minimizing the automata
    of regular path expressions.  DataGuide-based pruning lives partly
    here ({!prune_with_guide}) and partly in {!Eval.options}. *)

(** Move every [where] condition as early as possible: right after the
    first generator prefix that binds all the condition's label
    variables.  Semantics-preserving (conditions are pure); evaluated
    earlier, they cut the binding sets sooner. *)
val reorder_clauses : Ast.clause list -> Ast.clause list

(** Apply {!reorder_clauses} to every [select] in an expression. *)
val reorder : Ast.expr -> Ast.expr

(** Replace each regular path step by one with a minimized DFA-equivalent
    regex state space... (not expressible at regex level), so instead:
    report the automaton sizes before/after minimization for each regex
    step of the query — the diagnostic used by experiment E8. *)
val automaton_sizes :
  alphabet:Ssd.Label.t list -> Ast.expr -> (string * int * int) list
(** (regex text, NFA states, minimized DFA states) per regex step. *)

(** Drop generators whose all-literal path provably does not occur in the
    data (the DataGuide rejects it): the whole [select] yields [{}], so
    it is replaced by [Empty].  Returns the rewritten expression and the
    number of selects pruned. *)
val prune_with_guide : Ssd_schema.Dataguide.t -> Ast.expr -> Ast.expr * int
