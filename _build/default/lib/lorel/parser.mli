(** Parser for the Lorel-style concrete syntax.

    {v
      select X.title, X.year as when
      from DB.entry.movie X, X.cast.actor A
      where X.year >= 1942 and A = "Bogart"
    v}

    Path components: identifiers, quoted strings, integers, [%] (any one
    label) and [#] (any path, including the empty one). *)

exception Parse_error of string

val parse : string -> Ast.query

(** Parse a bare path expression (exposed for tests). *)
val parse_path : string -> Ast.path
