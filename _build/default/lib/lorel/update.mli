(** A Lorel-style update sublanguage.

    Section 1.1 asks "to what extent are database tools available for
    querying or {e maintaining} the web?"; Lorel (the full Lore system)
    had updates alongside queries.  Three statements cover the
    maintenance operations the tutorial's restructuring discussion
    implies:

    {v
      insert PATH := { ssd tree }     graft the tree's edges at every
                                      object PATH denotes
      delete PATH . component         drop matching out-edges ('%' = any)
                                      at every object PATH denotes
      rename PATH . old to new        relabel matching out-edges
    v}

    Updates are functional: {!apply} returns a new graph, the input is
    untouched.  Unreachable debris left by [delete] is collected. *)

exception Parse_error of string

type t

val parse : string -> t

val apply : db:Ssd.Graph.t -> t -> Ssd.Graph.t

(** Parse then apply; statements may be separated by [;]. *)
val run : db:Ssd.Graph.t -> string -> Ssd.Graph.t
