lib/lorel/ast.ml: Ssd
