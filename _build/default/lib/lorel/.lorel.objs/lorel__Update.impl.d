lib/lorel/update.ml: Ast Buffer Eval Int List Parser Set Ssd String
