lib/lorel/update.mli: Ssd
