lib/lorel/parser.mli: Ast
