lib/lorel/eval.mli: Ast Ssd
