lib/lorel/eval.ml: Ast Int List Parser Set Ssd Stdlib String
