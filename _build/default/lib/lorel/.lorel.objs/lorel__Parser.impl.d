lib/lorel/parser.ml: Ast Buffer List Printf Ssd String
