(** Abstract syntax of the Lorel-style language (section 3).

    Lorel is the OEM query language of the Lore project: SQL-like
    select–from–where over path expressions, with wildcards for label
    ([%]) and arbitrary path ([#]) positions, and a "rich set of
    overloadings" — comparisons coerce between strings and numbers and
    quantify existentially over the object sets that path expressions
    denote. *)

module Label = Ssd.Label

type component =
  | Clabel of Label.t (** one edge with exactly this label *)
  | Cany (** [%] — one edge, any label *)
  | Cpath (** [#] — any path, length ≥ 0 *)

(** [DB.entry.movie] or [X.cast.actor]: a start (variable or the
    database) and a component list. *)
type path = {
  start : string option; (** [None] = DB *)
  comps : component list;
}

type operand =
  | Opath of path
  | Olit of Label.t

type cmpop =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Like (** substring match after string coercion *)

type cond =
  | Cmp of cmpop * operand * operand
  | Exists of path
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type select_item = {
  item : path;
  alias : string option; (** [as name]; defaults to the last label of the path *)
}

type query = {
  select : select_item list;
  from : (path * string) list; (** [path X] range bindings, in order *)
  where : cond option;
}
