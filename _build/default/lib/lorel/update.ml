module Graph = Ssd.Graph
module Label = Ssd.Label

exception Parse_error of string

type statement =
  | Insert of Ast.path * Ssd.Graph.t (** graft at every target *)
  | Delete of Ast.path * Ast.component
  | Rename of Ast.path * Label.t * Label.t

type t = statement list

(* ------------------------------------------------------------------ *)
(* Parsing: reuse the Lorel path parser; the grafted value uses the ssd
   data syntax.                                                        *)
(* ------------------------------------------------------------------ *)

let split_statements src =
  (* split on ';' outside string literals and braces *)
  let parts = ref [] in
  let buf = Buffer.create 64 in
  let in_string = ref false in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '"' ->
        in_string := not !in_string;
        Buffer.add_char buf c
      | '{' when not !in_string ->
        incr depth;
        Buffer.add_char buf c
      | '}' when not !in_string ->
        decr depth;
        Buffer.add_char buf c
      | ';' when (not !in_string) && !depth = 0 ->
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    src;
  parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts |> List.filter (fun s -> s <> "")

let keyword_and_rest s =
  match String.index_opt s ' ' with
  | None -> (String.lowercase_ascii s, "")
  | Some i ->
    ( String.lowercase_ascii (String.sub s 0 i),
      String.trim (String.sub s i (String.length s - i)) )

(* Split "PATH . component" — the last dot-component of the path text. *)
let split_last_component text =
  match String.rindex_opt text '.' with
  | None -> raise (Parse_error ("expected PATH.component in: " ^ text))
  | Some i ->
    ( String.trim (String.sub text 0 i),
      String.trim (String.sub text (i + 1) (String.length text - i - 1)) )

let component_of_text text =
  if text = "%" then Ast.Cany
  else if text = "#" then raise (Parse_error "'#' cannot be deleted/renamed (not one edge)")
  else
    match Label.of_string text with
    | l -> Ast.Clabel l
    | exception Failure msg -> raise (Parse_error msg)

let parse_statement s =
  let kw, rest = keyword_and_rest s in
  match kw with
  | "insert" -> (
    match String.index_opt rest ':' with
    | Some i when i + 1 < String.length rest && rest.[i + 1] = '=' ->
      let path_text = String.trim (String.sub rest 0 i) in
      let value_text = String.trim (String.sub rest (i + 2) (String.length rest - i - 2)) in
      let path =
        try Parser.parse_path path_text
        with Parser.Parse_error m -> raise (Parse_error m)
      in
      let value =
        try Ssd.Syntax.parse_graph value_text
        with Ssd.Syntax.Parse_error m -> raise (Parse_error m)
      in
      Insert (path, value)
    | _ -> raise (Parse_error "insert expects PATH := { ... }"))
  | "delete" ->
    let path_text, comp_text = split_last_component rest in
    let path =
      try Parser.parse_path path_text with Parser.Parse_error m -> raise (Parse_error m)
    in
    Delete (path, component_of_text comp_text)
  | "rename" -> (
    (* rename PATH.old to new *)
    let lower = String.lowercase_ascii rest in
    match
      (* find the last " to " outside strings; updates are short, a plain
         search from the right is fine *)
      let rec find i =
        if i < 0 then None
        else if i + 4 <= String.length lower && String.sub lower i 4 = " to " then Some i
        else find (i - 1)
      in
      find (String.length lower - 4)
    with
    | None -> raise (Parse_error "rename expects PATH.old to new")
    | Some i ->
      let left = String.trim (String.sub rest 0 i) in
      let right = String.trim (String.sub rest (i + 4) (String.length rest - i - 4)) in
      let path_text, old_text = split_last_component left in
      let path =
        try Parser.parse_path path_text with Parser.Parse_error m -> raise (Parse_error m)
      in
      let old_label =
        try Label.of_string old_text with Failure m -> raise (Parse_error m)
      in
      let new_label = try Label.of_string right with Failure m -> raise (Parse_error m) in
      Rename (path, old_label, new_label))
  | kw -> raise (Parse_error ("unknown update statement " ^ kw))

let parse src = List.map parse_statement (split_statements src)

(* ------------------------------------------------------------------ *)
(* Application                                                         *)
(* ------------------------------------------------------------------ *)

module Int_set = Set.Make (Int)

let targets ~db path = Int_set.of_list (Eval.eval_path ~db ~env:[] path)

let apply_one ~db = function
  | Insert (path, value) ->
    let hit = targets ~db path in
    let b = Graph.Builder.create () in
    let root = Graph.import_into b db in
    let offset = root - Graph.root db in
    (* one shared copy of the grafted value; its edges hang off every
       target (object identity: the grafted subobjects are shared) *)
    if not (Int_set.is_empty hit) then begin
      let vroot = Graph.import_into b value in
      let voffset = vroot - Graph.root value in
      Int_set.iter
        (fun u ->
          List.iter
            (fun (l, v) ->
              match l with
              | Graph.Eps -> Graph.Builder.add_eps b (u + offset) (v + voffset)
              | Graph.Lab l -> Graph.Builder.add_edge b (u + offset) l (v + voffset))
            (Graph.succ value (Graph.root value)))
        hit
    end;
    Graph.Builder.set_root b root;
    Graph.gc (Graph.Builder.finish b)
  | Delete (path, comp) ->
    let hit = targets ~db path in
    let matches l =
      match comp with
      | Ast.Cany -> true
      | Ast.Clabel l' -> Label.equal l l'
      | Ast.Cpath -> false
    in
    let b = Graph.Builder.create () in
    for _ = 1 to Graph.n_nodes db do
      ignore (Graph.Builder.add_node b)
    done;
    Graph.fold_edges
      (fun () u l v ->
        match l with
        | Graph.Eps -> Graph.Builder.add_eps b u v
        | Graph.Lab l ->
          if not (Int_set.mem u hit && matches l) then Graph.Builder.add_edge b u l v)
      () db;
    Graph.Builder.set_root b (Graph.root db);
    Graph.gc (Graph.Builder.finish b)
  | Rename (path, old_label, new_label) ->
    let hit = targets ~db path in
    let b = Graph.Builder.create () in
    for _ = 1 to Graph.n_nodes db do
      ignore (Graph.Builder.add_node b)
    done;
    Graph.fold_edges
      (fun () u l v ->
        match l with
        | Graph.Eps -> Graph.Builder.add_eps b u v
        | Graph.Lab l ->
          let l = if Int_set.mem u hit && Label.equal l old_label then new_label else l in
          Graph.Builder.add_edge b u l v)
      () db;
    Graph.Builder.set_root b (Graph.root db);
    Graph.gc (Graph.Builder.finish b)

let apply ~db t = List.fold_left (fun db stmt -> apply_one ~db stmt) db t

let run ~db src = apply ~db (parse src)
