(* Canonical form invariant: the edge list is sorted by (label, subtree)
   and duplicate-free, and every subtree is itself canonical.  All
   constructors maintain it, so [Stdlib.compare]-style structural recursion
   implements set equality. *)

type t = Branch of (Label.t * t) list

let rec compare (Branch a) (Branch b) = compare_edge_lists a b

and compare_edge_lists a b =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (la, ta) :: resta, (lb, tb) :: restb ->
    let c = Label.compare la lb in
    if c <> 0 then c
    else
      let c = compare ta tb in
      if c <> 0 then c else compare_edge_lists resta restb

let equal a b = compare a b = 0

let compare_edge (la, ta) (lb, tb) =
  let c = Label.compare la lb in
  if c <> 0 then c else compare ta tb

let rec dedup_sorted = function
  | (e1 :: e2 :: rest) when compare_edge e1 e2 = 0 -> dedup_sorted (e2 :: rest)
  | e :: rest -> e :: dedup_sorted rest
  | [] -> []

let normalize_edges es = dedup_sorted (List.sort compare_edge es)

let empty = Branch []

let edge l t = Branch [ (l, t) ]

let leaf l = Branch [ (l, empty) ]

let union (Branch a) (Branch b) =
  (* Merge of two sorted duplicate-free lists. *)
  let rec merge a b =
    match a, b with
    | [], rest | rest, [] -> rest
    | ea :: resta, eb :: restb ->
      let c = compare_edge ea eb in
      if c < 0 then ea :: merge resta b
      else if c > 0 then eb :: merge a restb
      else ea :: merge resta restb
  in
  Branch (merge a b)

let of_edges es = Branch (normalize_edges es)

let unions ts = List.fold_left union empty ts

let edges (Branch es) = es

let is_empty (Branch es) = es = []

let out_degree (Branch es) = List.length es

let subtrees_with_label (Branch es) l =
  List.filter_map (fun (l', t) -> if Label.equal l l' then Some t else None) es

let rec size (Branch es) = List.fold_left (fun acc (_, t) -> acc + 1 + size t) 0 es

let rec depth (Branch es) = List.fold_left (fun acc (_, t) -> max acc (1 + depth t)) 0 es

let rec fold_edges f init (Branch es) =
  List.fold_left (fun acc (l, t) -> fold_edges f (f acc l t) t) init es

let rec map_labels f (Branch es) =
  of_edges (List.map (fun (l, t) -> (f l, map_labels f t)) es)

let rec filter_edges p (Branch es) =
  of_edges
    (List.filter_map (fun (l, t) -> if p l t then Some (l, filter_edges p t) else None) es)

let paths t =
  let rec go prefix (Branch es) acc =
    let acc = List.rev prefix :: acc in
    List.fold_left (fun acc (l, t) -> go (l :: prefix) t acc) acc es
  in
  List.rev (go [] t [])

let mem_label t l =
  let exception Found in
  try
    fold_edges (fun () l' _ -> if Label.equal l l' then raise Found) () t;
    false
  with Found -> true

let find_paths_to t p =
  let rec go prefix (Branch es) acc =
    List.fold_left
      (fun acc (l, sub) ->
        let acc = if p l then List.rev (l :: prefix) :: acc else acc in
        go (l :: prefix) sub acc)
      acc es
  in
  List.rev (go [] t [])

let rec pp fmt (Branch es) =
  match es with
  | [] -> Format.pp_print_string fmt "{}"
  | es ->
    Format.fprintf fmt "@[<hv 1>{";
    List.iteri
      (fun i (l, t) ->
        if i > 0 then Format.fprintf fmt ",@ ";
        if is_empty t then Label.pp fmt l
        else Format.fprintf fmt "%a:@ %a" Label.pp l pp t)
      es;
    Format.fprintf fmt "}@]"

let to_string t = Format.asprintf "%a" pp t
