(** Bisimulation on edge-labeled graphs.

    Section 2 of the paper discusses object identity: node ids support
    cheap equality inside one database but are meaningless across
    databases, where only the {e extension} — the (possibly infinite) tree
    a node unfolds into — can be compared.  Two nodes denote the same tree
    iff they are bisimilar, which is decidable on finite cyclic graphs;
    this module computes it by partition refinement.

    ε-edges are eliminated before comparison, so bisimilarity here is
    equality of the denoted trees. *)

(** [partition g] assigns each node of (the ε-eliminated, reachable part
    of) [g] a block id such that two nodes share a block iff they are
    bisimilar.  Returns the block array of the ε-eliminated graph and that
    graph itself. *)
val partition : Graph.t -> int array * Graph.t

(** [equal a b]: do the roots of [a] and [b] denote the same tree?  Agrees
    with {!Tree.equal} on acyclic graphs and is total on cyclic ones. *)
val equal : Graph.t -> Graph.t -> bool

(** [minimize g] is the quotient of [g] by bisimilarity: the unique (up to
    iso) smallest graph denoting the same tree — the canonical
    representation under value semantics. *)
val minimize : Graph.t -> Graph.t

(** Number of bisimilarity classes of [g]'s reachable nodes. *)
val n_classes : Graph.t -> int
