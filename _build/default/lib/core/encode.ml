exception Ill_formed of string

(* ------------------------------------------------------------------ *)
(* Relational databases                                                *)
(* ------------------------------------------------------------------ *)

type relation = {
  rel_name : string;
  attrs : string list;
  rows : Label.t list list;
}

type database = relation list

let tuple_sym = Label.Sym "tuple"

let tree_of_row attrs row =
  if List.length attrs <> List.length row then
    raise (Ill_formed "row arity does not match attribute list");
  Tree.of_edges (List.map2 (fun a v -> (Label.Sym a, Tree.leaf v)) attrs row)

let tree_of_relation r =
  Tree.of_edges (List.map (fun row -> (tuple_sym, tree_of_row r.attrs row)) r.rows)

let tree_of_database db =
  Tree.of_edges
    (List.map (fun r -> (Label.Sym r.rel_name, tree_of_relation r)) db)

let leaf_value where t =
  match Tree.edges t with
  | [ (v, sub) ] when Tree.is_empty sub -> v
  | _ -> raise (Ill_formed (where ^ ": expected a single leaf value"))

let row_of_tree ~name attrs t =
  List.map
    (fun a ->
      match Tree.subtrees_with_label t (Label.Sym a) with
      | [ sub ] -> leaf_value (name ^ "." ^ a) sub
      | [] -> raise (Ill_formed (Printf.sprintf "%s: missing attribute %s" name a))
      | _ :: _ :: _ ->
        raise (Ill_formed (Printf.sprintf "%s: duplicate attribute %s" name a)))
    attrs

let attrs_of_tuple t =
  Tree.edges t
  |> List.map (fun (l, _) ->
         match l with
         | Label.Sym a -> a
         | l -> raise (Ill_formed ("non-symbol attribute " ^ Label.to_string l)))
  |> List.sort_uniq String.compare

let relation_of_tree ~name t =
  let tuples =
    Tree.edges t
    |> List.map (fun (l, sub) ->
           if Label.equal l tuple_sym then sub
           else raise (Ill_formed (name ^ ": expected only tuple edges")))
  in
  let attrs =
    match tuples with
    | [] -> []
    | first :: rest ->
      let a0 = attrs_of_tuple first in
      List.iter
        (fun t ->
          if attrs_of_tuple t <> a0 then
            raise (Ill_formed (name ^ ": tuples disagree on attributes")))
        rest;
      a0
  in
  { rel_name = name; attrs; rows = List.map (row_of_tree ~name attrs) tuples }

let database_of_tree t =
  Tree.edges t
  |> List.map (fun (l, sub) ->
         match l with
         | Label.Sym name -> relation_of_tree ~name sub
         | l -> raise (Ill_formed ("non-symbol relation name " ^ Label.to_string l)))

(* ------------------------------------------------------------------ *)
(* Object-oriented databases                                           *)
(* ------------------------------------------------------------------ *)

type field =
  | Base of Label.t
  | Ref of int
  | Fset of field list

type obj = {
  oid : int;
  cls : string;
  fields : (string * field) list;
}

let graph_of_objects ~roots objs =
  let b = Graph.Builder.create () in
  let root = Graph.Builder.add_node b in
  Graph.Builder.set_root b root;
  let by_oid = Hashtbl.create 16 in
  List.iter
    (fun o ->
      if Hashtbl.mem by_oid o.oid then
        raise (Ill_formed (Printf.sprintf "duplicate oid %d" o.oid));
      Hashtbl.add by_oid o.oid o)
    objs;
  (* Allocate one graph node per object up front so Ref edges can share. *)
  let node_of_oid = Hashtbl.create 16 in
  List.iter (fun o -> Hashtbl.add node_of_oid o.oid (Graph.Builder.add_node b)) objs;
  let target_of_oid where oid =
    match Hashtbl.find_opt node_of_oid oid with
    | Some n -> n
    | None -> raise (Ill_formed (Printf.sprintf "%s: dangling reference to oid %d" where oid))
  in
  let rec field_target where = function
    | Base v ->
      let n = Graph.Builder.add_node b in
      let lf = Graph.Builder.add_node b in
      Graph.Builder.add_edge b n v lf;
      n
    | Ref oid -> target_of_oid where oid
    | Fset fields ->
      let n = Graph.Builder.add_node b in
      List.iter
        (fun f -> Graph.Builder.add_edge b n (Label.Sym "member") (field_target where f))
        fields;
      n
  in
  List.iter
    (fun o ->
      let n = Hashtbl.find node_of_oid o.oid in
      List.iter
        (fun (fname, f) ->
          let where = Printf.sprintf "%s(oid %d).%s" o.cls o.oid fname in
          Graph.Builder.add_edge b n (Label.Sym fname) (field_target where f))
        o.fields)
    objs;
  List.iter
    (fun oid ->
      let o =
        match Hashtbl.find_opt by_oid oid with
        | Some o -> o
        | None -> raise (Ill_formed (Printf.sprintf "unknown root oid %d" oid))
      in
      Graph.Builder.add_edge b root (Label.Sym o.cls) (target_of_oid "root" oid))
    roots;
  Graph.gc (Graph.Builder.finish b)
