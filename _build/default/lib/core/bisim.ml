(* Naive partition refinement: repeatedly split blocks by the signature
   {(label, block of target)} of each node until stable.  O(n * m * rounds)
   with rounds <= n; fine at the scales of this reproduction and simple to
   trust.  Signatures are canonicalized as sorted duplicate-free lists. *)

let signature g block u =
  Graph.labeled_succ g u
  |> List.map (fun (l, v) -> (l, block.(v)))
  |> List.sort_uniq (fun (l1, b1) (l2, b2) ->
         let c = Label.compare l1 l2 in
         if c <> 0 then c else Stdlib.compare b1 b2)

let refine g =
  let n = Graph.n_nodes g in
  let block = Array.make n 0 in
  let n_blocks = ref 1 in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Group nodes by (old block, signature); assign new dense block ids. *)
    let table = Hashtbl.create n in
    let next = ref 0 in
    let new_block = Array.make n 0 in
    for u = 0 to n - 1 do
      let key = (block.(u), signature g block u) in
      match Hashtbl.find_opt table key with
      | Some b -> new_block.(u) <- b
      | None ->
        Hashtbl.add table key !next;
        new_block.(u) <- !next;
        incr next
    done;
    if !next <> !n_blocks then begin
      changed := true;
      n_blocks := !next
    end;
    Array.blit new_block 0 block 0 n
  done;
  (block, !n_blocks)

let partition g =
  let g = Graph.eps_eliminate g in
  let block, _ = refine g in
  (block, g)

let n_classes g =
  let g = Graph.eps_eliminate g in
  let _, k = refine g in
  k

let equal a b =
  (* Refine the disjoint union and compare the blocks of the two roots.
     [signature] reads through ε-edges, so no prior elimination is
     needed. *)
  let u = Graph.union a b in
  let block, _ = refine u in
  match Graph.succ u (Graph.root u) with
  | [ (Graph.Eps, ra); (Graph.Eps, rb) ] -> block.(ra) = block.(rb)
  | _ -> assert false

let minimize g =
  let block, g = partition g in
  let n = Graph.n_nodes g in
  let n_blocks = Array.fold_left (fun acc b -> max acc (b + 1)) 0 block in
  let b = Graph.Builder.create () in
  for _ = 1 to n_blocks do
    ignore (Graph.Builder.add_node b)
  done;
  (* One representative node per block supplies the edges. *)
  let done_ = Array.make n_blocks false in
  for u = 0 to n - 1 do
    if not done_.(block.(u)) then begin
      done_.(block.(u)) <- true;
      let es =
        Graph.labeled_succ g u
        |> List.map (fun (l, v) -> (l, block.(v)))
        |> List.sort_uniq compare
      in
      List.iter (fun (l, v) -> Graph.Builder.add_edge b block.(u) l v) es
    end
  done;
  Graph.Builder.set_root b block.(Graph.root g);
  Graph.gc (Graph.Builder.finish b)
