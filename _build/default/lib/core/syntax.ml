exception Parse_error of string

type token =
  | Lbrace
  | Rbrace
  | Comma
  | Colon
  | Amp of string
  | Star of string
  | Tlabel of Label.t
  | Eof

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
}

let error lx msg =
  raise (Parse_error (Printf.sprintf "line %d: %s" lx.line msg))

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance lx;
    skip_ws lx
  | Some '#' ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      advance lx
    done;
    skip_ws lx
  | _ -> ()

let lex_string lx =
  let buf = Buffer.create 16 in
  advance lx;
  (* opening quote *)
  let rec loop () =
    match peek_char lx with
    | None -> error lx "unterminated string literal"
    | Some '"' -> advance lx
    | Some '\\' ->
      advance lx;
      (match peek_char lx with
       | Some 'n' -> Buffer.add_char buf '\n'
       | Some 't' -> Buffer.add_char buf '\t'
       | Some 'r' -> Buffer.add_char buf '\r'
       | Some c -> Buffer.add_char buf c
       | None -> error lx "unterminated escape");
      advance lx;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      loop ()
  in
  loop ();
  Buffer.contents buf

let lex_ident lx =
  let start = lx.pos in
  while
    match peek_char lx with
    | Some c -> Label.is_ident_char c
    | None -> false
  do
    advance lx
  done;
  String.sub lx.src start (lx.pos - start)

let lex_number lx =
  let start = lx.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E'
  in
  while (match peek_char lx with Some c -> is_num_char c | None -> false) do
    advance lx
  done;
  let s = String.sub lx.src start (lx.pos - start) in
  match int_of_string_opt s with
  | Some i -> Label.Int i
  | None ->
    (match float_of_string_opt s with
     | Some f -> Label.Float f
     | None -> error lx ("bad numeric literal " ^ s))

let next_token lx =
  skip_ws lx;
  match peek_char lx with
  | None -> Eof
  | Some '{' ->
    advance lx;
    Lbrace
  | Some '}' ->
    advance lx;
    Rbrace
  | Some ',' ->
    advance lx;
    Comma
  | Some ':' ->
    advance lx;
    Colon
  | Some '&' ->
    advance lx;
    Amp (lex_ident lx)
  | Some '*' ->
    advance lx;
    Star (lex_ident lx)
  | Some '"' -> Tlabel (Label.Str (lex_string lx))
  | Some c when c = '-' || (c >= '0' && c <= '9') -> Tlabel (lex_number lx)
  | Some c when Label.is_ident_start c ->
    let id = lex_ident lx in
    (match id with
     | "true" -> Tlabel (Label.Bool true)
     | "false" -> Tlabel (Label.Bool false)
     | _ -> Tlabel (Label.Sym id))
  | Some c -> error lx (Printf.sprintf "unexpected character %C" c)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type parser_state = {
  lx : lexer;
  mutable tok : token;
  builder : Graph.Builder.t;
  names : (string, int) Hashtbl.t; (* &id / *id bindings *)
  bound : (string, unit) Hashtbl.t; (* names actually defined by &id *)
}

let shift st = st.tok <- next_token st.lx

let expect st tok msg =
  if st.tok = tok then shift st else error st.lx msg

let node_for_name st name =
  match Hashtbl.find_opt st.names name with
  | Some id -> id
  | None ->
    let id = Graph.Builder.add_node st.builder in
    Hashtbl.add st.names name id;
    id

(* parse_node returns the node id of the parsed node. *)
let rec parse_node st =
  match st.tok with
  | Amp name ->
    shift st;
    if Hashtbl.mem st.bound name then
      error st.lx (Printf.sprintf "node &%s bound twice" name);
    Hashtbl.add st.bound name ();
    let id = node_for_name st name in
    let body = parse_node st in
    Graph.Builder.add_eps st.builder id body;
    id
  | Star name ->
    shift st;
    node_for_name st name
  | Lbrace ->
    shift st;
    let id = Graph.Builder.add_node st.builder in
    let rec entries () =
      match st.tok with
      | Rbrace -> shift st
      | _ ->
        parse_entry st id;
        (match st.tok with
         | Comma ->
           shift st;
           entries ()
         | Rbrace -> shift st
         | _ -> error st.lx "expected ',' or '}'")
    in
    entries ();
    id
  | _ -> error st.lx "expected '{', '&' or '*'"

and parse_entry st parent =
  match st.tok with
  | Tlabel l ->
    shift st;
    (match st.tok with
     | Colon ->
       shift st;
       let v = parse_value st in
       Graph.Builder.add_edge st.builder parent l v
     | _ ->
       (* bare label: sugar for l: {} *)
       let leafn = Graph.Builder.add_node st.builder in
       Graph.Builder.add_edge st.builder parent l leafn)
  | _ -> error st.lx "expected a label"

and parse_value st =
  match st.tok with
  | Tlabel l ->
    (* bare label value: sugar for {l: {}} *)
    shift st;
    let v = Graph.Builder.add_node st.builder in
    let leafn = Graph.Builder.add_node st.builder in
    Graph.Builder.add_edge st.builder v l leafn;
    v
  | _ -> parse_node st

let parse_graph src =
  let lx = { src; pos = 0; line = 1 } in
  let st =
    {
      lx;
      tok = next_token lx;
      builder = Graph.Builder.create ();
      names = Hashtbl.create 8;
      bound = Hashtbl.create 8;
    }
  in
  let r = parse_node st in
  expect st Eof "trailing input after top-level node";
  Hashtbl.iter
    (fun name _ ->
      if not (Hashtbl.mem st.bound name) then
        error lx (Printf.sprintf "reference *%s has no &%s binding" name name))
    st.names;
  Graph.Builder.set_root st.builder r;
  Graph.gc (Graph.Builder.finish st.builder)

let parse_tree src = Graph.to_tree (parse_graph src)
