(** Edge-labeled trees: the first model of section 2 of the paper,

    {[ type tree = set(label * tree) ]}

    A tree is a {e set} of (label, subtree) pairs: edges out of a node are
    unordered and duplicates are absorbed.  The representation is kept in a
    canonical form (edges sorted by {!Label.compare} then by subtree, with
    duplicates removed), so structural equality of canonical trees is set
    equality.

    Values of this type are finite; cyclic data lives in {!Graph}. *)

type t

(** {1 Constructors} *)

(** The empty tree [{}]. *)
val empty : t

(** [edge l t] is the singleton tree [{l: t}]. *)
val edge : Label.t -> t -> t

(** [leaf l] is [{l: {}}] — how base values appear in the edge-labeled
    model (e.g. the tree under a [Title] edge is [{"Casablanca": {}}]). *)
val leaf : Label.t -> t

(** [union a b] is set union of the two edge sets, [a ∪ b]. *)
val union : t -> t -> t

(** [of_edges es] builds a tree from an arbitrary edge list (normalizes). *)
val of_edges : (Label.t * t) list -> t

(** n-ary {!union}. *)
val unions : t list -> t

(** {1 Observers} *)

(** Canonical edge list, sorted and duplicate-free. *)
val edges : t -> (Label.t * t) list

val is_empty : t -> bool

(** Number of outgoing edges of the root. *)
val out_degree : t -> int

(** [subtrees_with_label t l] is the set of subtrees reachable over an
    [l]-labeled edge from the root. *)
val subtrees_with_label : t -> Label.t -> t list

(** Set equality (structural equality of canonical forms). *)
val equal : t -> t -> bool

(** Total order compatible with {!equal}. *)
val compare : t -> t -> int

(** Total number of edges in the tree. *)
val size : t -> int

(** Length of the longest root-to-leaf path. *)
val depth : t -> int

(** {1 Traversals} *)

(** [fold_edges f init t] folds [f] over every edge of [t] (root edges and
    all nested edges), in no particular order. *)
val fold_edges : ('a -> Label.t -> t -> 'a) -> 'a -> t -> 'a

(** [map_labels f t] relabels every edge. *)
val map_labels : (Label.t -> Label.t) -> t -> t

(** [filter_edges p t] keeps, recursively, only edges satisfying [p];
    pruned edges drop their whole subtree. *)
val filter_edges : (Label.t -> t -> bool) -> t -> t

(** All root-to-node label paths of the tree (including the empty path). *)
val paths : t -> Label.t list list

(** {1 Searching (the browsing queries of section 1.3)} *)

(** [mem_label t l]: does label [l] occur anywhere in [t]? *)
val mem_label : t -> Label.t -> bool

(** [find_paths_to t p]: label paths from the root to every edge whose
    label satisfies [p] (answers "where in the database is the string
    "Casablanca" to be found?"). *)
val find_paths_to : t -> (Label.t -> bool) -> Label.t list list

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
