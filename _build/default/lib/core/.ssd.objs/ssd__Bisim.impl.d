lib/core/bisim.ml: Array Graph Hashtbl Label List Stdlib
