lib/core/variant.mli: Format Label Tree
