lib/core/json.ml: Buffer Format Fun Hashtbl Label List Printf String Tree
