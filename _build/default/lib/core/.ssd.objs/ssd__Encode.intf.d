lib/core/encode.mli: Graph Label Tree
