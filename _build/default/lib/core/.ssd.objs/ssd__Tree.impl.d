lib/core/tree.ml: Format Label List
