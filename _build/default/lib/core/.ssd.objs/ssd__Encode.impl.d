lib/core/encode.ml: Graph Hashtbl Label List Printf String Tree
