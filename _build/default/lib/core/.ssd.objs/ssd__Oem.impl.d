lib/core/oem.ml: Array Buffer Format Graph Hashtbl Label List Printf String
