lib/core/bisim.mli: Graph
