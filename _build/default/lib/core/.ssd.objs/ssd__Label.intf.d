lib/core/label.mli: Format
