lib/core/graph.mli: Format Label Tree
