lib/core/variant.ml: Format Label List String Tree
