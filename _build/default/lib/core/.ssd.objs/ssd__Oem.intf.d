lib/core/oem.mli: Format Graph Label
