lib/core/tree.mli: Format Label
