lib/core/label.ml: Buffer Format Hashtbl Stdlib String
