lib/core/syntax.ml: Buffer Graph Hashtbl Label Printf String
