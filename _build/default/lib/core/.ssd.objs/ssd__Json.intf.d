lib/core/json.mli: Format Tree
