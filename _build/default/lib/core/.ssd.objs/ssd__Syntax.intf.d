lib/core/syntax.mli: Graph Tree
