lib/core/simulation.ml: Array Graph Label List
