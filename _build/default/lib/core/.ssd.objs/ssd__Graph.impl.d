lib/core/graph.ml: Array Format Hashtbl Label List Option Tree
