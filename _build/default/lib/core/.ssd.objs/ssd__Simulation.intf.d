lib/core/simulation.mli: Graph Label
