(* Maximal simulation by greatest-fixpoint iteration: start from the full
   relation and delete pairs (u, s) whose edge-matching condition fails,
   until stable.  Kept naive (O(rounds * n1 * n2 * d1 * d2)) for clarity;
   the graphs in this reproduction are small enough. *)

let maximal ~n1 ~succ1 ~n2 ~succ2 ~matches =
  let sim = Array.make_matrix n1 n2 true in
  let succ1 = Array.init n1 succ1 in
  let succ2 = Array.init n2 succ2 in
  let ok u s =
    List.for_all
      (fun (l, u') ->
        List.exists (fun (m, s') -> matches l m && sim.(u').(s')) succ2.(s))
      succ1.(u)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for u = 0 to n1 - 1 do
      for s = 0 to n2 - 1 do
        if sim.(u).(s) && not (ok u s) then begin
          sim.(u).(s) <- false;
          changed := true
        end
      done
    done
  done;
  Array.init n1 (fun u ->
      let row = ref [] in
      for s = n2 - 1 downto 0 do
        if sim.(u).(s) then row := s :: !row
      done;
      !row)

let simulates a b =
  let a = Graph.eps_eliminate a and b = Graph.eps_eliminate b in
  let sim =
    maximal
      ~n1:(Graph.n_nodes a)
      ~succ1:(Graph.labeled_succ a)
      ~n2:(Graph.n_nodes b)
      ~succ2:(Graph.labeled_succ b)
      ~matches:Label.equal
  in
  List.mem (Graph.root b) sim.(Graph.root a)

let similar a b = simulates a b && simulates b a
