(** Encodings of structured databases into the semistructured model.

    Section 2: "It is straightforward to encode relational and
    object-oriented databases in this model, although in the latter case
    one must take care to deal with the issue of object-identity.  However,
    the coding is not unique..."

    This module provides one canonical coding each way and the partial
    inverse ("the passage back from semistructured to structured data",
    section 5) for data that conforms. *)

(** {1 Relational databases} *)

type relation = {
  rel_name : string;
  attrs : string list;
  rows : Label.t list list; (** each row has [List.length attrs] fields *)
}

type database = relation list

exception Ill_formed of string
(** Raised by {!relation_of_tree} when the tree does not conform to the
    relational coding. *)

(** [tree_of_database db] encodes each relation [R(a₁..aₙ)] as

    {v {R: {tuple: {a₁: v₁, ..., aₙ: vₙ}, tuple: ...}, ...} v}

    Values appear as leaf edges.  Note set semantics: duplicate rows
    collapse, exactly as in the relational model. *)
val tree_of_database : database -> Tree.t

val tree_of_relation : relation -> Tree.t

(** Partial inverse of {!tree_of_database}.
    @raise Ill_formed if the tree is not in the image of the coding. *)
val database_of_tree : Tree.t -> database

val relation_of_tree : name:string -> Tree.t -> relation

(** {1 Object-oriented databases}

    Objects have identity: two fields referring to the same oid must map
    to the {e same graph node}, so the encoding targets {!Graph.t}, not
    {!Tree.t}, and reference cycles are preserved. *)

type field =
  | Base of Label.t
  | Ref of int (** reference to another object's oid *)
  | Fset of field list

type obj = {
  oid : int;
  cls : string;
  fields : (string * field) list;
}

(** [graph_of_objects ~roots objs] encodes the objects reachable from
    [roots]:

    - the root has one [cls]-labeled edge per root object;
    - an object node has one edge per field;
    - a [Ref oid] field edge points directly at the target object's node
      (sharing — this is where object identity matters);
    - a set field becomes a node with one [member] edge per element.

    @raise Ill_formed on a dangling [Ref]. *)
val graph_of_objects : roots:int list -> obj list -> Graph.t
