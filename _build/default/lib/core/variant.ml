module Leafy = struct
  type t =
    | Base of Label.t
    | Node of (string * t) list

  let rec compare a b =
    match a, b with
    | Base x, Base y -> Label.compare x y
    | Base _, Node _ -> -1
    | Node _, Base _ -> 1
    | Node xs, Node ys -> compare_edges xs ys

  and compare_edges xs ys =
    match xs, ys with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | (sx, tx) :: restx, (sy, ty) :: resty ->
      let c = String.compare sx sy in
      if c <> 0 then c
      else
        let c = compare tx ty in
        if c <> 0 then c else compare_edges restx resty

  let equal a b = compare a b = 0

  let compare_edge (sa, ta) (sb, tb) =
    let c = String.compare sa sb in
    if c <> 0 then c else compare ta tb

  let rec normalize = function
    | Base _ as t -> t
    | Node es ->
      let es = List.map (fun (s, t) -> (s, normalize t)) es in
      let es = List.sort_uniq compare_edge es in
      Node es

  let rec pp fmt = function
    | Base l -> Label.pp fmt l
    | Node [] -> Format.pp_print_string fmt "{}"
    | Node es ->
      Format.fprintf fmt "@[<hv 1>{";
      List.iteri
        (fun i (s, t) ->
          if i > 0 then Format.fprintf fmt ",@ ";
          Format.fprintf fmt "%s: %a" s pp t)
        es;
      Format.fprintf fmt "}@]"
end

module Nodelab = struct
  type t = {
    node : Label.t;
    children : (Label.t * t) list;
  }

  let rec compare a b =
    let c = Label.compare a.node b.node in
    if c <> 0 then c else compare_edges a.children b.children

  and compare_edges xs ys =
    match xs, ys with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | (lx, tx) :: restx, (ly, ty) :: resty ->
      let c = Label.compare lx ly in
      if c <> 0 then c
      else
        let c = compare tx ty in
        if c <> 0 then c else compare_edges restx resty

  let equal a b = compare a b = 0

  let compare_edge (la, ta) (lb, tb) =
    let c = Label.compare la lb in
    if c <> 0 then c else compare ta tb

  let rec normalize t =
    let children = List.map (fun (l, c) -> (l, normalize c)) t.children in
    { t with children = List.sort_uniq compare_edge children }

  let rec pp fmt t =
    Format.fprintf fmt "@[<hv 1>%a{" Label.pp t.node;
    List.iteri
      (fun i (l, c) ->
        if i > 0 then Format.fprintf fmt ",@ ";
        Format.fprintf fmt "%a: %a" Label.pp l pp c)
      t.children;
    Format.fprintf fmt "}@]"
end

(* ------------------------------------------------------------------ *)
(* V1 ⟷ V2                                                             *)
(* ------------------------------------------------------------------ *)

let rec v1_of_leafy = function
  | Leafy.Base b -> Tree.leaf b
  | Leafy.Node es ->
    Tree.of_edges (List.map (fun (s, t) -> (Label.Sym s, v1_of_leafy t)) es)

let rec leafy_of_v1 t =
  match Tree.edges t with
  | [ (b, sub) ] when (not (Label.is_sym b)) && Tree.is_empty sub ->
    (* A lone base-labeled leaf edge is a data leaf. *)
    Leafy.Base b
  | es ->
    let edge (l, sub) =
      match l with
      | Label.Sym s -> (s, leafy_of_v1 sub)
      | b ->
        (* Base label in edge position: keep it via extra "data" edges so
           the mapping stays total. *)
        if Tree.is_empty sub then ("data", Leafy.Base b)
        else
          ( "data",
            Leafy.Node [ ("value", Leafy.Base b); ("content", leafy_of_v1 sub) ] )
    in
    Leafy.normalize (Leafy.Node (List.map edge es))

(* ------------------------------------------------------------------ *)
(* V1 ⟷ V3                                                             *)
(* ------------------------------------------------------------------ *)

let node_sym = Label.Sym "node"

let rec v1_of_nodelab { Nodelab.node; children } =
  Tree.of_edges
    ((node_sym, Tree.leaf node)
    :: List.map (fun (l, c) -> (l, v1_of_nodelab c)) children)

let rec nodelab_of_v1 ~root t =
  let node =
    match Tree.subtrees_with_label t node_sym with
    | sub :: _ ->
      (match Tree.edges sub with
       | (l, _) :: _ -> l
       | [] -> root)
    | [] -> root
  in
  let children =
    Tree.edges t
    |> List.filter (fun (l, _) -> not (Label.equal l node_sym))
    |> List.map (fun (l, sub) -> (l, nodelab_of_v1 ~root sub))
  in
  Nodelab.normalize { Nodelab.node; children }
