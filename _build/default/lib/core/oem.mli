(** The Object Exchange Model's textual format (Tsimmis; §1.2).

    OEM is the §1.2 motivation made concrete: "an internal data structure
    for exchange of data between DBMSs".  Its textual form labels every
    object with an optional object id, a type, and a value:

    {v
      obj   ::= ["&" id] "<" label "," type "," value ">"
      type  ::= set | int | real | str | bool
      value ::= "{" obj ("," obj)* "}"        when type = set
              | literal                        otherwise
      ref   ::= "&" id                         a reference in value position
    v}

    Example (a fragment of Figure 1):

    {v
      <entry, set, {
        &m1 <movie, set, {
          <title, str, "Casablanca">,
          <year, int, 1942>,
          <references, set, { &m1 }> }> }>
    v}

    Mapping into the edge-labeled model: an OEM object becomes an edge
    labeled with the object's label; atomic values hang below it as leaf
    edges; set members become the target's edges; [&id] definitions and
    references share graph nodes, so cyclic OEM databases map to cyclic
    graphs.  [of_graph]/[to_graph] round-trip up to bisimilarity
    (property-tested). *)

type otype =
  | Set
  | Int
  | Real
  | Str
  | Bool

type t = {
  oid : string option; (** [&id] binder, if any *)
  label : string;
  value : value;
}

and value =
  | Atom of Label.t
  | Objects of member list

and member =
  | Obj of t
  | Ref of string (** [&id] reference *)

exception Parse_error of string

val parse : string -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Decode an OEM document into a data graph (the document's object is
    the single edge out of the root).
    @raise Parse_error on dangling references. *)
val to_graph : t -> Graph.t

(** Encode a graph as an OEM document under the given top label.  Nodes
    with several labeled parents (or on cycles) get generated [&o<n>]
    ids; base-label leaf edges become atomic objects typed by their
    label. *)
val of_graph : ?top:string -> Graph.t -> t
