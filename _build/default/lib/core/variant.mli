(** The three model variants of section 2 and the mappings between them.

    Variant 1 (the library's native {!Tree.t}):
    {[ type label = int | string | ... | symbol
       type tree  = set(label × tree) ]}

    Variant 2 (Lorel/OEM-style, [{!Leafy.t}]): leaves carry data, internal
    nodes carry nothing, edges carry only symbols:
    {[ type base = int | string | ...
       type tree = base | set(symbol × tree) ]}

    Variant 3 ([{!Nodelab.t}]): internal nodes also carry labels:
    {[ type tree = label × set(label × tree) ]}

    The paper notes the differences are minor and "it is easy to define
    mappings in both directions"; this module is those mappings.  Each
    round-trip [from_v1 ∘ to_v1] is the identity on its variant, and
    [to_v1 ∘ from_v1] is the identity on the sublanguage of {!Tree.t} that
    the variant can express (property-tested in the test suite). *)

module Leafy : sig
  type t =
    | Base of Label.t (** a data leaf; the label is never [Sym] *)
    | Node of (string * t) list (** symbol-labeled edges, set semantics *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  (** Canonical form (sorted, duplicate-free edge sets, recursively). *)
  val normalize : t -> t
end

module Nodelab : sig
  type t = {
    node : Label.t; (** the label on the node itself *)
    children : (Label.t * t) list;
  }

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val normalize : t -> t
end

(** {1 Variant 1 ⟷ Variant 2}

    A V2 data leaf [Base b] appears in V1 as the leaf edge [{b: {}}]; a V2
    node is a V1 node whose edges are all symbols.  [v1_of_leafy] is total.
    [leafy_of_v1] maps a base-labeled V1 edge [{b: t}] to a node holding
    both a ["data"] leaf and the encoded [t] — the "extra edges" trick the
    paper mentions — so that it is also total and [v1_of_leafy ∘
    leafy_of_v1 = id] holds only on symbol-edged trees (tested). *)

val v1_of_leafy : Leafy.t -> Tree.t
val leafy_of_v1 : Tree.t -> Leafy.t

(** {1 Variant 1 ⟷ Variant 3}

    A V3 tree [(l, children)] is encoded in V1 by an extra edge: the node
    label becomes a [node: {l: {}}] edge next to the children, making
    union of two trees well-defined again (the difficulty the paper points
    out with labeling internal nodes directly). *)

val v1_of_nodelab : Nodelab.t -> Tree.t
val nodelab_of_v1 : root:Label.t -> Tree.t -> Nodelab.t
