(** Rooted edge-labeled graphs with node identities.

    This is the OEM-flavoured representation of section 2 of the paper:
    nodes carry object identities (here: dense integer ids), edges carry
    labels, cycles are allowed, and everything of interest is what is
    reachable from a distinguished root by forward traversal.

    ε-edges (unlabeled edges) are supported; they are the standard device
    for giving graphs a cheap union/append and are invisible to the tree
    semantics: the tree denoted by a node is the union of the trees over
    its ε-closure. *)

type edge_label =
  | Eps                 (** unlabeled; collapsed by the tree semantics *)
  | Lab of Label.t

type t

exception Cyclic
(** Raised by {!to_tree} when the graph reachable from the root has a
    cycle (its unfolding is infinite). *)

(** {1 Construction} *)

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  (** Allocate a fresh node and return its id. *)
  val add_node : t -> int

  (** [add_edge b u l v] adds edge [u --l--> v]. *)
  val add_edge : t -> int -> Label.t -> int -> unit

  (** [add_eps b u v] adds an ε-edge [u --> v]. *)
  val add_eps : t -> int -> int -> unit

  val set_root : t -> int -> unit
  val n_nodes : t -> int

  (** Freeze into an immutable graph.  The root defaults to node 0; it is
      an error to finish a builder with no nodes. *)
  val finish : t -> graph
end

(** [import_into b g] copies all of [g]'s nodes and edges into the builder
    and returns the new id of [g]'s root (node [i] of [g] maps to
    [i + returned_root - root g]). *)
val import_into : Builder.t -> t -> int

(** The one-node graph denoting the empty tree [{}]. *)
val empty : t

(** [edge l g] denotes [{l: T(g)}]: a fresh root with an [l]-edge to the
    root of [g]. *)
val edge : Label.t -> t -> t

(** [leaf l] denotes [{l: {}}]. *)
val leaf : Label.t -> t

(** [union a b] denotes tree union: a fresh root with ε-edges to both
    roots.  Node ids of [b] are shifted. *)
val union : t -> t -> t

val unions : t list -> t

(** [of_tree t] builds a tree-shaped graph (one node per tree node). *)
val of_tree : Tree.t -> t

(** {1 Observers} *)

val root : t -> int
val n_nodes : t -> int

(** Number of edges, ε-edges included. *)
val n_edges : t -> int

(** Outgoing edges of a node, ε-edges included. *)
val succ : t -> int -> (edge_label * int) list

(** Outgoing labeled edges after ε-closure: the edges of the tree denoted
    by the node. *)
val labeled_succ : t -> int -> (Label.t * int) list

(** ε-closure of a node (includes the node itself). *)
val eps_closure : t -> int -> int list

(** [fold_edges f init g] folds over all edges [(u, l, v)] of [g],
    ε-edges included. *)
val fold_edges : ('a -> int -> edge_label -> int -> 'a) -> 'a -> t -> 'a

(** Fold over labeled edges only (ε-edges skipped, not closed over). *)
val fold_labeled_edges : ('a -> int -> Label.t -> int -> 'a) -> 'a -> t -> 'a

(** [reachable g] marks nodes reachable from the root (following all
    edges). *)
val reachable : t -> bool array

(** Is the subgraph reachable from the root free of cycles?  ε-edges
    count. *)
val is_acyclic : t -> bool

(** {1 Transformations} *)

(** Restrict to the nodes reachable from the root, remapping ids densely.
    This is how unreachable garbage produced by restructuring queries is
    collected. *)
val gc : t -> t

(** Remove ε-edges, preserving the tree semantics (each node inherits the
    labeled edges of its ε-closure). *)
val eps_eliminate : t -> t

val map_labels : (Label.t -> Label.t) -> t -> t

(** {1 Conversion to trees} *)

(** [to_tree g] computes the tree denoted by [g].  Linear in the size of
    the underlying DAG (memoized), but the resulting tree can be
    exponentially larger once shared nodes are unfolded.
    @raise Cyclic if the reachable part of [g] is cyclic. *)
val to_tree : t -> Tree.t

(** [unfold ~depth g] is the tree denoting [g] cut at [depth] labeled
    edges; total on cyclic graphs. *)
val unfold : depth:int -> t -> Tree.t

(** {1 Printing} *)

(** Prints the graph in data syntax, introducing [&n]/[*n] sharing markers
    for nodes with several incoming edges or on cycles. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
