type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Sym of string

let int i = Int i
let float f = Float f
let str s = Str s
let bool b = Bool b
let sym s = Sym s

let constructor_rank = function
  | Int _ -> 0
  | Float _ -> 1
  | Str _ -> 2
  | Bool _ -> 3
  | Sym _ -> 4

let compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Sym x, Sym y -> String.compare x y
  | _ -> Stdlib.compare (constructor_rank a) (constructor_rank b)

let equal a b = compare a b = 0

let hash = function
  | Int i -> Hashtbl.hash (0, i)
  | Float f -> Hashtbl.hash (1, f)
  | Str s -> Hashtbl.hash (2, s)
  | Bool b -> Hashtbl.hash (3, b)
  | Sym s -> Hashtbl.hash (4, s)

let is_int = function Int _ -> true | Float _ | Str _ | Bool _ | Sym _ -> false
let is_float = function Float _ -> true | Int _ | Str _ | Bool _ | Sym _ -> false
let is_str = function Str _ -> true | Int _ | Float _ | Bool _ | Sym _ -> false
let is_bool = function Bool _ -> true | Int _ | Float _ | Str _ | Sym _ -> false
let is_sym = function Sym _ -> true | Int _ | Float _ | Str _ | Bool _ -> false

let type_name = function
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Bool _ -> "bool"
  | Sym _ -> "symbol"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string = function
  | Int i -> string_of_int i
  | Float f ->
    (* Keep a trailing part so the literal re-parses as a float. *)
    let s = string_of_float f in
    if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0" else s
  | Str s -> escape_string s
  | Bool b -> string_of_bool b
  | Sym s -> s

let pp fmt l = Format.pp_print_string fmt (to_string l)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-' || c = '\''

let unescape_string s =
  (* [s] includes the surrounding quotes. *)
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then failwith ("Label.of_string: bad string literal " ^ s);
  let buf = Buffer.create (n - 2) in
  let rec loop i =
    if i >= n - 1 then ()
    else if s.[i] = '\\' && i + 1 < n - 1 then begin
      (match s.[i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | 'r' -> Buffer.add_char buf '\r'
       | c -> Buffer.add_char buf c);
      loop (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 1;
  Buffer.contents buf

let of_string s =
  let s = String.trim s in
  if s = "" then failwith "Label.of_string: empty input"
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else if s.[0] = '"' then Str (unescape_string s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt s with
       | Some f -> Float f
       | None ->
         if is_ident_start s.[0] && String.for_all is_ident_char s then Sym s
         else failwith ("Label.of_string: cannot parse " ^ s))
