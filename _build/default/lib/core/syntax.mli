(** Concrete textual syntax for semistructured data.

    Grammar (whitespace and [(* ... *)]-free; [#] starts a line comment):

    {v
      node  ::= "&" id node          bind a shared/cyclic node
              | "*" id               reference a bound node
              | "{" [entry ("," entry)*] "}"
      entry ::= label [":" value]    a bare label is sugar for label: {}
      value ::= node | label         a bare label is sugar for {label: {}}
      label ::= INT | FLOAT | STRING | BOOL | IDENT
      id    ::= IDENT | INT
    v}

    Example (a fragment of the paper's Figure 1):

    {v
      {entry: {movie: {title: "Casablanca",
                       cast: {actor: "Bogart", actor: "Bacall"}}}}
    v}

    [&id]/[*id] introduce sharing and cycles; forward references are
    allowed.  {!Graph.pp} prints in the same syntax (with numeric ids), so
    parse/print round-trips up to bisimilarity. *)

exception Parse_error of string
(** Raised with a message containing the offending position. *)

(** Parse a (possibly cyclic) graph. *)
val parse_graph : string -> Graph.t

(** Parse a finite tree.
    @raise Parse_error on syntax errors.
    @raise Graph.Cyclic if the input uses [&]/[*] to form a cycle. *)
val parse_tree : string -> Tree.t
