type edge_label =
  | Eps
  | Lab of Label.t

type t = {
  root : int;
  out : (edge_label * int) array array;
}

exception Cyclic

module Builder = struct
  type t = {
    mutable n : int;
    mutable edges : (int * edge_label * int) list;
    mutable n_edges : int;
    mutable root : int;
  }

  let create () = { n = 0; edges = []; n_edges = 0; root = 0 }

  let add_node b =
    let id = b.n in
    b.n <- b.n + 1;
    id

  let add_raw_edge b u l v =
    assert (u >= 0 && u < b.n && v >= 0 && v < b.n);
    b.edges <- (u, l, v) :: b.edges;
    b.n_edges <- b.n_edges + 1

  let add_edge b u l v = add_raw_edge b u (Lab l) v
  let add_eps b u v = add_raw_edge b u Eps v

  let set_root b r =
    assert (r >= 0 && r < b.n);
    b.root <- r

  let n_nodes b = b.n

  let finish b =
    if b.n = 0 then invalid_arg "Graph.Builder.finish: empty builder";
    let counts = Array.make b.n 0 in
    List.iter (fun (u, _, _) -> counts.(u) <- counts.(u) + 1) b.edges;
    let out = Array.init b.n (fun u -> Array.make counts.(u) (Eps, 0)) in
    let fill = Array.make b.n 0 in
    (* b.edges is reversed insertion order; filling from it and then
       reversing per-node keeps insertion order, which printing relies on
       for stability. *)
    List.iter
      (fun (u, l, v) ->
        out.(u).(fill.(u)) <- (l, v);
        fill.(u) <- fill.(u) + 1)
      b.edges;
    Array.iter
      (fun row ->
        let n = Array.length row in
        let half = n / 2 in
        for i = 0 to half - 1 do
          let tmp = row.(i) in
          row.(i) <- row.(n - 1 - i);
          row.(n - 1 - i) <- tmp
        done)
      out;
    { root = b.root; out }
end

let root g = g.root
let n_nodes g = Array.length g.out
let n_edges g = Array.fold_left (fun acc row -> acc + Array.length row) 0 g.out
let succ g u = Array.to_list g.out.(u)

let empty =
  let b = Builder.create () in
  let r = Builder.add_node b in
  Builder.set_root b r;
  Builder.finish b

(* Copy [g]'s nodes into builder [b], returning the id offset. *)
let import b g =
  let offset = Builder.n_nodes b in
  for _ = 1 to n_nodes g do
    ignore (Builder.add_node b)
  done;
  Array.iteri
    (fun u row ->
      Array.iter (fun (l, v) -> Builder.add_raw_edge b (u + offset) l (v + offset)) row)
    g.out;
  offset

let import_into b g = root g + import b g

let edge l g =
  let b = Builder.create () in
  let r = Builder.add_node b in
  Builder.set_root b r;
  let off = import b g in
  Builder.add_edge b r l (root g + off);
  Builder.finish b

let leaf l = edge l empty

let union a b0 =
  let b = Builder.create () in
  let r = Builder.add_node b in
  Builder.set_root b r;
  let offa = import b a in
  let offb = import b b0 in
  Builder.add_eps b r (root a + offa);
  Builder.add_eps b r (root b0 + offb);
  Builder.finish b

let unions = function
  | [] -> empty
  | [ g ] -> g
  | gs ->
    let b = Builder.create () in
    let r = Builder.add_node b in
    Builder.set_root b r;
    List.iter
      (fun g ->
        let off = import b g in
        Builder.add_eps b r (root g + off))
      gs;
    Builder.finish b

let of_tree t =
  let b = Builder.create () in
  let rec go t =
    let u = Builder.add_node b in
    List.iter
      (fun (l, sub) ->
        let v = go sub in
        Builder.add_edge b u l v)
      (Tree.edges t);
    u
  in
  let r = go t in
  Builder.set_root b r;
  Builder.finish b

let eps_closure g u =
  let seen = Hashtbl.create 8 in
  let rec go u acc =
    if Hashtbl.mem seen u then acc
    else begin
      Hashtbl.add seen u ();
      Array.fold_left
        (fun acc (l, v) -> match l with Eps -> go v acc | Lab _ -> acc)
        (u :: acc) g.out.(u)
    end
  in
  go u []

let labeled_succ g u =
  let closure = eps_closure g u in
  List.concat_map
    (fun w ->
      Array.to_list g.out.(w)
      |> List.filter_map (fun (l, v) -> match l with Lab l -> Some (l, v) | Eps -> None))
    closure

let fold_edges f init g =
  let acc = ref init in
  Array.iteri
    (fun u row -> Array.iter (fun (l, v) -> acc := f !acc u l v) row)
    g.out;
  !acc

let fold_labeled_edges f init g =
  fold_edges (fun acc u l v -> match l with Lab l -> f acc u l v | Eps -> acc) init g

let reachable g =
  let seen = Array.make (n_nodes g) false in
  let rec go u =
    if not seen.(u) then begin
      seen.(u) <- true;
      Array.iter (fun (_, v) -> go v) g.out.(u)
    end
  in
  go g.root;
  seen

let is_acyclic g =
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let state = Array.make (n_nodes g) 0 in
  let exception Cycle in
  let rec go u =
    match state.(u) with
    | 1 -> raise Cycle
    | 2 -> ()
    | _ ->
      state.(u) <- 1;
      Array.iter (fun (_, v) -> go v) g.out.(u);
      state.(u) <- 2
  in
  try
    go g.root;
    true
  with Cycle -> false

let gc g =
  let live = reachable g in
  let remap = Array.make (n_nodes g) (-1) in
  let next = ref 0 in
  Array.iteri
    (fun u alive ->
      if alive then begin
        remap.(u) <- !next;
        incr next
      end)
    live;
  let out = Array.make !next [||] in
  Array.iteri
    (fun u row ->
      if live.(u) then
        out.(remap.(u)) <- Array.map (fun (l, v) -> (l, remap.(v))) row)
    g.out;
  { root = remap.(g.root); out }

let eps_eliminate g =
  let g = gc g in
  let out =
    Array.init (n_nodes g) (fun u -> Array.of_list (List.map (fun (l, v) -> (Lab l, v)) (labeled_succ g u)))
  in
  gc { root = g.root; out }

let map_labels f g =
  {
    g with
    out = Array.map (Array.map (fun (l, v) -> ((match l with Eps -> Eps | Lab l -> Lab (f l)), v))) g.out;
  }

let to_tree g =
  if not (is_acyclic g) then raise Cyclic;
  let memo = Hashtbl.create 64 in
  let rec go u =
    match Hashtbl.find_opt memo u with
    | Some t -> t
    | None ->
      let t = Tree.of_edges (List.map (fun (l, v) -> (l, go v)) (labeled_succ g u)) in
      Hashtbl.add memo u t;
      t
  in
  go g.root

let unfold ~depth g =
  (* Memoized on (node, remaining depth). *)
  let memo = Hashtbl.create 64 in
  let rec go u d =
    if d <= 0 then Tree.empty
    else
      match Hashtbl.find_opt memo (u, d) with
      | Some t -> t
      | None ->
        let t = Tree.of_edges (List.map (fun (l, v) -> (l, go v (d - 1))) (labeled_succ g u)) in
        Hashtbl.add memo (u, d) t;
        t
  in
  go g.root depth

let pp fmt g =
  (* Nodes reached more than once (by labeled traversal) get &n markers. *)
  let indegree = Hashtbl.create 64 in
  let bump u = Hashtbl.replace indegree u (1 + Option.value ~default:0 (Hashtbl.find_opt indegree u)) in
  let visited = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 16 in
  let cycle_target = Hashtbl.create 4 in
  let rec count u =
    if Hashtbl.mem on_stack u then Hashtbl.replace cycle_target u ()
    else if not (Hashtbl.mem visited u) then begin
      Hashtbl.add visited u ();
      Hashtbl.add on_stack u ();
      List.iter
        (fun (_, v) ->
          bump v;
          count v)
        (labeled_succ g u);
      Hashtbl.remove on_stack u
    end
  in
  count g.root;
  let shared u =
    Hashtbl.mem cycle_target u
    || Option.value ~default:0 (Hashtbl.find_opt indegree u) > 1
  in
  let printed = Hashtbl.create 16 in
  let rec pp_node fmt u =
    if Hashtbl.mem printed u then Format.fprintf fmt "*%d" u
    else begin
      if shared u then begin
        Hashtbl.add printed u ();
        Format.fprintf fmt "&%d " u
      end;
      let es = labeled_succ g u in
      match es with
      | [] -> Format.pp_print_string fmt "{}"
      | es ->
        Format.fprintf fmt "@[<hv 1>{";
        List.iteri
          (fun i (l, v) ->
            if i > 0 then Format.fprintf fmt ",@ ";
            if labeled_succ g v = [] && not (shared v) then Label.pp fmt l
            else Format.fprintf fmt "%a:@ %a" Label.pp l pp_node v)
          es;
        Format.fprintf fmt "}@]"
    end
  in
  pp_node fmt g.root

let to_string g = Format.asprintf "%a" pp g
