type otype =
  | Set
  | Int
  | Real
  | Str
  | Bool

type t = {
  oid : string option;
  label : string;
  value : value;
}

and value =
  | Atom of Label.t
  | Objects of member list

and member =
  | Obj of t
  | Ref of string

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let type_of_atom = function
  | Label.Int _ -> Int
  | Label.Float _ -> Real
  | Label.Str _ | Label.Sym _ -> Str
  | Label.Bool _ -> Bool

let type_name = function
  | Set -> "set"
  | Int -> "int"
  | Real -> "real"
  | Str -> "str"
  | Bool -> "bool"

let atom_literal = function
  | Label.Sym s -> Label.to_string (Label.Str s)
  | l -> Label.to_string l

let rec pp fmt o =
  (match o.oid with
   | Some id -> Format.fprintf fmt "&%s " id
   | None -> ());
  match o.value with
  | Atom l ->
    Format.fprintf fmt "<%s, %s, %s>" o.label (type_name (type_of_atom l)) (atom_literal l)
  | Objects members ->
    Format.fprintf fmt "@[<hv 2><%s, set, {" o.label;
    List.iteri
      (fun i m ->
        if i > 0 then Format.fprintf fmt ",@ " else Format.fprintf fmt "@ ";
        match m with
        | Obj o -> pp fmt o
        | Ref id -> Format.fprintf fmt "&%s" id)
      members;
    Format.fprintf fmt " }>@]"

let to_string o = Format.asprintf "%a" pp o

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type pstate = {
  src : string;
  mutable pos : int;
}

let fail st msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    st.pos <- st.pos + 1;
    skip_ws st
  | _ -> ()

let eat st c msg =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st msg

let lex_ident st =
  skip_ws st;
  let start = st.pos in
  while
    match peek st with
    | Some c -> Label.is_ident_char c
    | None -> false
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected an identifier";
  String.sub st.src start (st.pos - start)

let lex_atom st =
  skip_ws st;
  match peek st with
  | Some '"' ->
    let buf = Buffer.create 16 in
    st.pos <- st.pos + 1;
    let rec loop () =
      match peek st with
      | None -> fail st "unterminated string"
      | Some '"' -> st.pos <- st.pos + 1
      | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
         | Some 'n' -> Buffer.add_char buf '\n'
         | Some 't' -> Buffer.add_char buf '\t'
         | Some c -> Buffer.add_char buf c
         | None -> fail st "unterminated escape");
        st.pos <- st.pos + 1;
        loop ()
      | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        loop ()
    in
    loop ();
    Label.Str (Buffer.contents buf)
  | Some c when c = '-' || (c >= '0' && c <= '9') ->
    let start = st.pos in
    let numchar c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek st with Some c -> numchar c | None -> false) do
      st.pos <- st.pos + 1
    done;
    let s = String.sub st.src start (st.pos - start) in
    (match int_of_string_opt s with
     | Some i -> Label.Int i
     | None ->
       (match float_of_string_opt s with
        | Some f -> Label.Float f
        | None -> fail st ("bad number " ^ s)))
  | Some c when Label.is_ident_start c -> (
    match lex_ident st with
    | "true" -> Label.Bool true
    | "false" -> Label.Bool false
    | w -> fail st ("expected an atomic value, got " ^ w))
  | _ -> fail st "expected an atomic value"

(* Labels are usually identifiers, but base labels from the graph side
   appear in label position too (quoted strings, numbers, booleans); keep
   their literal text so the graph mapping can re-parse them. *)
let lex_oem_label st =
  skip_ws st;
  match peek st with
  | Some c when Label.is_ident_start c -> lex_ident st
  | _ -> Label.to_string (lex_atom st)

let rec parse_obj st =
  skip_ws st;
  let oid =
    if peek st = Some '&' then begin
      st.pos <- st.pos + 1;
      Some (lex_ident st)
    end
    else None
  in
  eat st '<' "expected '<'";
  let label = lex_oem_label st in
  eat st ',' "expected ',' after the label";
  let tname = lex_ident st in
  eat st ',' "expected ',' after the type";
  let value =
    match tname with
    | "set" ->
      eat st '{' "set value expects '{'";
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Objects []
      end
      else begin
        let member () =
          skip_ws st;
          if peek st = Some '&' then begin
            (* Could be a reference (&id) or a bound object (&id <...>). *)
            let saved = st.pos in
            st.pos <- st.pos + 1;
            let id = lex_ident st in
            skip_ws st;
            if peek st = Some '<' then begin
              st.pos <- saved;
              Obj (parse_obj st)
            end
            else Ref id
          end
          else Obj (parse_obj st)
        in
        let members = ref [ member () ] in
        skip_ws st;
        while peek st = Some ',' do
          st.pos <- st.pos + 1;
          members := member () :: !members;
          skip_ws st
        done;
        eat st '}' "expected '}' closing the set";
        Objects (List.rev !members)
      end
    | "int" | "real" | "str" | "bool" ->
      let l = lex_atom st in
      let declared =
        match tname with "int" -> Int | "real" -> Real | "str" -> Str | _ -> Bool
      in
      if type_of_atom l <> declared then
        fail st (Printf.sprintf "value %s does not have declared type %s" (atom_literal l) tname);
      Atom l
    | t -> fail st ("unknown OEM type " ^ t)
  in
  eat st '>' "expected '>' closing the object";
  { oid; label; value }

let parse src =
  let st = { src; pos = 0 } in
  let o = parse_obj st in
  skip_ws st;
  if peek st <> None then fail st "trailing input after object";
  o

(* ------------------------------------------------------------------ *)
(* To/from graphs                                                      *)
(* ------------------------------------------------------------------ *)

let label_of_oem_label s =
  match Label.of_string s with
  | l -> l
  | exception Failure _ -> Label.Sym s

let to_graph doc =
  let b = Graph.Builder.create () in
  let root = Graph.Builder.add_node b in
  Graph.Builder.set_root b root;
  let oids : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let pending_refs = ref [] in
  let node_for_oid id =
    match Hashtbl.find_opt oids id with
    | Some n -> n
    | None ->
      let n = Graph.Builder.add_node b in
      Hashtbl.add oids id n;
      n
  in
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec emit parent o =
    let node =
      match o.oid with
      | Some id ->
        if Hashtbl.mem bound id then
          raise (Parse_error (Printf.sprintf "object id &%s bound twice" id));
        Hashtbl.add bound id ();
        node_for_oid id
      | None -> Graph.Builder.add_node b
    in
    Graph.Builder.add_edge b parent (label_of_oem_label o.label) node;
    (match o.value with
     | Atom l ->
       let leaf = Graph.Builder.add_node b in
       Graph.Builder.add_edge b node l leaf
     | Objects members ->
       List.iter
         (function
           | Obj o' -> emit node o'
           | Ref id ->
             pending_refs := id :: !pending_refs;
             (* a reference splices the target's content: ε-edge *)
             Graph.Builder.add_eps b node (node_for_oid id))
         members)
  in
  emit root doc;
  List.iter
    (fun id ->
      if not (Hashtbl.mem bound id) then
        raise (Parse_error (Printf.sprintf "reference &%s has no definition" id)))
    !pending_refs;
  Graph.gc (Graph.Builder.finish b)

let of_graph ?(top = "db") g =
  let g = Graph.eps_eliminate g in
  (* Nodes needing an oid: labeled in-degree > 1 or targets of cycles. *)
  let indegree = Array.make (Graph.n_nodes g) 0 in
  Graph.fold_labeled_edges (fun () _ _ v -> indegree.(v) <- indegree.(v) + 1) () g;
  let on_stack = Hashtbl.create 16 in
  let cycle_target = Hashtbl.create 8 in
  let seen = Hashtbl.create 64 in
  let rec mark u =
    if Hashtbl.mem on_stack u then Hashtbl.replace cycle_target u ()
    else if not (Hashtbl.mem seen u) then begin
      Hashtbl.add seen u ();
      Hashtbl.add on_stack u ();
      List.iter (fun (_, v) -> mark v) (Graph.labeled_succ g u);
      Hashtbl.remove on_stack u
    end
  in
  mark (Graph.root g);
  let needs_oid u = indegree.(u) > 1 || Hashtbl.mem cycle_target u in
  let emitted = Hashtbl.create 16 in
  let oid_of u = Printf.sprintf "o%d" u in
  let atomic u =
    (* a node standing for an atomic value: exactly one base-label leaf *)
    match Graph.labeled_succ g u with
    | [ (l, v) ] when (not (Label.is_sym l)) && Graph.labeled_succ g v = [] -> Some l
    | _ -> None
  in
  let rec obj_of label u =
    if Hashtbl.mem emitted u then
      (* subsequent visits become references wrapped under this label *)
      { oid = None; label; value = Objects [ Ref (oid_of u) ] }
    else begin
      let oid = if needs_oid u then Some (oid_of u) else None in
      if oid <> None then Hashtbl.add emitted u ();
      match atomic u with
      | Some l -> { oid; label; value = Atom l }
      | None ->
        let members =
          List.map
            (fun (l, v) -> Obj (obj_of (Label.to_string l) v))
            (Graph.labeled_succ g u)
        in
        { oid; label; value = Objects members }
    end
  in
  obj_of top (Graph.root g)
