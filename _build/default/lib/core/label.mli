(** Labels of the semistructured data model.

    Following Buneman (PODS'97, section 2), an edge of the data graph is
    labeled with a value drawn from a tagged union of base types and
    symbols:

    {[ type label = int | float | string | bool | ... | symbol ]}

    Symbols are the attribute-like names ([Movie], [Title], ...) that a
    schema would normally own; in semistructured data they live in the data
    itself.  Strings and symbols are distinct label constructors even though
    both are represented as strings internally. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Sym of string

val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t
val sym : string -> t

(** Total order on labels (constructor order first, then value order).
    Used to give trees their set semantics via sorted edge lists. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** {1 Dynamic type tests}

    Semistructured data is "self-describing": programs switch on the runtime
    type of a label (section 2 of the paper).  These are the predicates a
    query language exposes, e.g. [isInt], [isString]. *)

val is_int : t -> bool
val is_float : t -> bool
val is_str : t -> bool
val is_bool : t -> bool
val is_sym : t -> bool

(** Name of the runtime type: ["int"], ["float"], ["string"], ["bool"],
    ["symbol"]. *)
val type_name : t -> string

(** {1 Printing and parsing} *)

(** [to_string l] prints in the concrete data syntax: symbols bare
    ([Movie]), strings quoted (["Casablanca"]), numbers and booleans as
    literals. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [of_string s] parses a single label literal; inverse of {!to_string} on
    well-formed input.  Raises [Failure] on malformed input. *)
val of_string : string -> t

(** Character classes of symbol identifiers, shared by the data-syntax and
    query-language lexers. *)

val is_ident_start : char -> bool
val is_ident_char : char -> bool
