(** The movie database of the paper's Figure 1, literal and scaled.

    Figure 1 is the tutorial's only figure: an edge-labeled graph of
    movie/TV entries with deliberate irregularities — two different
    representations of a cast (direct [actors] vs nested
    [credit.actors]), a TV show with integer-labeled [episode] edges
    (arrays as integer edge labels), and a [references] /
    [is_referenced_in] edge pair forming a cycle between two entries. *)

(** The figure, reconstructed (17 symbols / 3 entries, cyclic). *)
val figure1 : unit -> Ssd.Graph.t

(** A scaled database with the same shape and irregularities:
    [n_entries] entries, ~10% TV shows, casts split between the two
    encodings, occasional [budget] floats, and ~20% of movies referencing
    an earlier entry (with the reciprocal [is_referenced_in] edge, so the
    graph is cyclic).  Actor names are drawn from a pool of about
    [n_entries / 3] names, so actors recur across movies.  Deterministic
    in [seed]. *)
val generate : ?seed:int -> n_entries:int -> unit -> Ssd.Graph.t
