(** Deterministic SplitMix64 PRNG.

    All workload generators take explicit seeds and draw from this
    generator, so every experiment in EXPERIMENTS.md is reproducible
    bit-for-bit without depending on [Random]'s global state. *)

type t

val create : seed:int -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** Bernoulli draw. *)
val bool : t -> p:float -> bool

(** Uniform choice from a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Geometric-ish size draw in [lo, hi] biased toward [lo]. *)
val size : t -> lo:int -> hi:int -> int
