module Graph = Ssd.Graph
module Label = Ssd.Label

let ranks = [| "kingdom"; "phylum"; "class"; "order"; "family"; "genus"; "species" |]

let generate ?(seed = 11) ?(branching = 3) ?(max_depth = 60) ~n_taxa () =
  let rng = Prng.create ~seed in
  let b = Graph.Builder.create () in
  let root = Graph.Builder.add_node b in
  Graph.Builder.set_root b root;
  let count = ref 0 in
  let value parent name v =
    let f = Graph.Builder.add_node b in
    Graph.Builder.add_edge b parent (Label.sym name) f;
    let leaf = Graph.Builder.add_node b in
    Graph.Builder.add_edge b f v leaf
  in
  (* Depth-first growth with a global budget: subtrees have arbitrary,
     data-dependent depth (deep chains happen when branching draws 1). *)
  let rec taxon parent depth =
    if !count < n_taxa then begin
      let id = !count in
      incr count;
      let t = Graph.Builder.add_node b in
      Graph.Builder.add_edge b parent (Label.sym (if depth = 0 then "taxon" else "child")) t;
      value t "name" (Label.str (Printf.sprintf "Taxon %d" id));
      value t "rank" (Label.str ranks.(min depth (Array.length ranks - 1)));
      if Prng.bool rng ~p:0.4 then
        value t "sequence_length" (Label.int (1000 + Prng.int rng 1_000_000));
      if Prng.bool rng ~p:0.2 then
        value t "habitat" (Label.str (Prng.choose rng [ "soil"; "marine"; "freshwater"; "host" ]));
      if depth < max_depth then begin
        let kids = Prng.size rng ~lo:0 ~hi:branching in
        let kids = if depth = 0 then max 1 kids else kids in
        for _ = 1 to kids do
          taxon t (depth + 1)
        done
      end
    end
  in
  while !count < n_taxa do
    taxon root 0
  done;
  Graph.Builder.finish b
