module Graph = Ssd.Graph
module Label = Ssd.Label

let generate ?(seed = 5) ?(branching = 3) ?(alphabet = 12) ~regularity ~n_edges () =
  let rng = Prng.create ~seed in
  let b = Graph.Builder.create () in
  let root = Graph.Builder.add_node b in
  Graph.Builder.set_root b root;
  (* Regular draws repeat the depth's label for every sibling (the shape
     of relational data: homogeneous collections), so summaries collapse
     each level to one class; random draws defeat that. *)
  let label ~depth ~pos =
    ignore pos;
    if Prng.bool rng ~p:regularity then
      Label.sym (Printf.sprintf "l%d" (depth mod alphabet))
    else Label.sym (Printf.sprintf "l%d" (Prng.int rng alphabet))
  in
  (* Breadth-first growth up to the edge budget keeps depth balanced. *)
  let queue = Queue.create () in
  Queue.push (root, 0) queue;
  let edges = ref 0 in
  while !edges < n_edges && not (Queue.is_empty queue) do
    let u, depth = Queue.pop queue in
    let kids = min branching (n_edges - !edges) in
    for pos = 0 to kids - 1 do
      let v = Graph.Builder.add_node b in
      Graph.Builder.add_edge b u (label ~depth ~pos) v;
      incr edges;
      Queue.push (v, depth + 1) queue
    done
  done;
  Graph.Builder.finish b
