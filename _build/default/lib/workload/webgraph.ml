module Graph = Ssd.Graph
module Label = Ssd.Label

let generate ?(seed = 7) ?(n_hosts = 10) ?(avg_links = 3.0) ?(locality = 0.7) ~n_pages () =
  let rng = Prng.create ~seed in
  let b = Graph.Builder.create () in
  let root = Graph.Builder.add_node b in
  Graph.Builder.set_root b root;
  let n_hosts = max 1 (min n_hosts n_pages) in
  let host_nodes =
    Array.init n_hosts (fun h ->
        let hn = Graph.Builder.add_node b in
        Graph.Builder.add_edge b root (Label.sym "host") hn;
        let name = Graph.Builder.add_node b in
        Graph.Builder.add_edge b hn (Label.sym "name") name;
        let leaf = Graph.Builder.add_node b in
        Graph.Builder.add_edge b name (Label.str (Printf.sprintf "host%d.example" h)) leaf;
        hn)
  in
  let host_of = Array.init n_pages (fun p -> p mod n_hosts) in
  let page_nodes =
    Array.init n_pages (fun p ->
        let pn = Graph.Builder.add_node b in
        Graph.Builder.add_edge b host_nodes.(host_of.(p)) (Label.sym "page") pn;
        let url = Graph.Builder.add_node b in
        Graph.Builder.add_edge b pn (Label.sym "url") url;
        let uleaf = Graph.Builder.add_node b in
        Graph.Builder.add_edge b url
          (Label.str (Printf.sprintf "http://host%d.example/p%d" host_of.(p) p))
          uleaf;
        let title = Graph.Builder.add_node b in
        Graph.Builder.add_edge b pn (Label.sym "title") title;
        let tleaf = Graph.Builder.add_node b in
        Graph.Builder.add_edge b title (Label.str (Printf.sprintf "Page %d" p)) tleaf;
        pn)
  in
  (* Links: each page draws around avg_links targets; with probability
     [locality] the target shares the host. *)
  for p = 0 to n_pages - 1 do
    let n_links =
      let base = int_of_float avg_links in
      base + (if Prng.float rng < avg_links -. float_of_int base then 1 else 0)
    in
    for _ = 1 to n_links do
      let target =
        if Prng.bool rng ~p:locality && n_pages >= n_hosts then begin
          (* Same host: pages p ≡ host (mod n_hosts). *)
          let same_host_count = ((n_pages - 1 - host_of.(p)) / n_hosts) + 1 in
          host_of.(p) + (n_hosts * Prng.int rng same_host_count)
        end
        else Prng.int rng n_pages
      in
      Graph.Builder.add_edge b page_nodes.(p) (Label.sym "link") page_nodes.(target)
    done
  done;
  Graph.Builder.finish b
