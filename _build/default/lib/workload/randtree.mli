(** Parametric random trees: the regularity dial.

    The [regularity] parameter interpolates between fully regular data
    (every node at depth [d] carries the same label set, as relational
    data would) and fully irregular data (labels drawn at random from the
    alphabet).  DataGuide size (experiment E7) and k-RO compression are
    functions of this dial: regular data summarizes to a path, irregular
    data defeats summarization. *)

(** [generate ~n_edges ~regularity ()]:
    - [branching]: children per internal node (default 3);
    - [alphabet]: number of distinct symbol labels (default 12);
    - [regularity] ∈ [0,1]: probability that a child edge takes its
      deterministic depth-and-position label rather than a random one. *)
val generate :
  ?seed:int -> ?branching:int -> ?alphabet:int -> regularity:float -> n_edges:int -> unit ->
  Ssd.Graph.t
