lib/workload/bibdb.mli: Ssd
