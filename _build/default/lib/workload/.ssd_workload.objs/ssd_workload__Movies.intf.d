lib/workload/movies.mli: Ssd
