lib/workload/bibdb.ml: Array Printf Prng Ssd
