lib/workload/webgraph.ml: Array Printf Prng Ssd
