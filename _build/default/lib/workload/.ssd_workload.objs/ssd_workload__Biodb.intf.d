lib/workload/biodb.mli: Ssd
