lib/workload/biodb.ml: Array Printf Prng Ssd
