lib/workload/movies.ml: Array List Printf Prng Ssd
