lib/workload/webgraph.mli: Ssd
