lib/workload/randtree.ml: Printf Prng Queue Ssd
