lib/workload/randtree.mli: Ssd
