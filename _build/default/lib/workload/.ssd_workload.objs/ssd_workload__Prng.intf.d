lib/workload/prng.mli:
