module Graph = Ssd.Graph
module Label = Ssd.Label

let sym = Label.sym
let str = Label.str

(* Small helpers over a builder: leaf chains like {title: {"Casablanca"}}. *)
let node b = Graph.Builder.add_node b

let leaf b parent l =
  let v = node b in
  Graph.Builder.add_edge b parent l v;
  v

let field b parent name =
  (* parent --name--> fresh node, returned *)
  leaf b parent (sym name)

let value b parent name v =
  let f = field b parent name in
  ignore (leaf b f v)

let figure1 () =
  let b = Graph.Builder.create () in
  let root = node b in
  Graph.Builder.set_root b root;
  (* Entry 1: Casablanca, cast via the nested credit.actors encoding. *)
  let e1 = field b root "entry" in
  let m1 = field b e1 "movie" in
  value b m1 "title" (str "Casablanca");
  let cast1 = field b m1 "cast" in
  let credit = field b cast1 "credit" in
  let actors1 = field b credit "actors" in
  ignore (leaf b actors1 (str "Bogart"));
  ignore (leaf b actors1 (str "Bacall"));
  value b m1 "director" (str "Curtiz");
  (* Entry 2: Play it again, Sam; direct actors encoding; references e1. *)
  let e2 = field b root "entry" in
  let m2 = field b e2 "movie" in
  value b m2 "title" (str "Play it again, Sam");
  let cast2 = field b m2 "cast" in
  let actors2 = field b cast2 "actors" in
  ignore (leaf b actors2 (str "Allen"));
  value b m2 "director" (str "Allen");
  value b m2 "budget" (Label.float 1.2e6);
  Graph.Builder.add_edge b m2 (sym "references") m1;
  Graph.Builder.add_edge b m1 (sym "is_referenced_in") m2;
  (* Entry 3: a TV show; special_guests cast; integer-labeled episodes. *)
  let e3 = field b root "entry" in
  let tv = field b e3 "tvshow" in
  value b tv "title" (str "Casablanca");
  let cast3 = field b tv "cast" in
  let guests = field b cast3 "special_guests" in
  ignore (leaf b guests (str "Bogart"));
  let episodes = field b tv "episode" in
  List.iter
    (fun (i, name) ->
      let e = leaf b episodes (Label.int i) in
      ignore (leaf b e (str name)))
    [ (1, "Who Holds Tomorrow?"); (2, "Cafe Society"); (3, "Siren Song") ];
  Graph.Builder.finish b

let first_names = [| "Humphrey"; "Lauren"; "Ingrid"; "Woody"; "Diane"; "Peter"; "Grace"; "Orson" |]
let last_names = [| "Bogart"; "Bacall"; "Bergman"; "Allen"; "Keaton"; "Lorre"; "Kelly"; "Welles" |]

let generate ?(seed = 42) ~n_entries () =
  let rng = Prng.create ~seed in
  let b = Graph.Builder.create () in
  let root = node b in
  Graph.Builder.set_root b root;
  let n_actors = max 4 (n_entries / 3) in
  let actor_name i =
    Printf.sprintf "%s %s %d"
      first_names.(i mod Array.length first_names)
      last_names.(i / Array.length first_names mod Array.length last_names)
      i
  in
  let movie_nodes = ref [] in
  for i = 0 to n_entries - 1 do
    let e = field b root "entry" in
    let is_tv = Prng.bool rng ~p:0.1 in
    let m = field b e (if is_tv then "tvshow" else "movie") in
    value b m "title" (str (Printf.sprintf "%s %d" (if is_tv then "Show" else "Movie") i));
    value b m "year" (Label.int (1920 + Prng.int rng 100));
    let cast = field b m "cast" in
    let actors_node =
      if is_tv then field b cast "special_guests"
      else if Prng.bool rng ~p:0.5 then field b (field b cast "credit") "actors"
      else field b cast "actors"
    in
    for _ = 1 to 1 + Prng.int rng 4 do
      ignore (leaf b actors_node (str (actor_name (Prng.int rng n_actors))))
    done;
    if is_tv then begin
      let eps = field b m "episode" in
      for ep = 1 to 1 + Prng.int rng 6 do
        let en = leaf b eps (Label.int ep) in
        ignore (leaf b en (str (Printf.sprintf "Episode %d of %d" ep i)))
      done
    end
    else begin
      value b m "director" (str (actor_name (Prng.int rng n_actors)));
      if Prng.bool rng ~p:0.3 then
        value b m "budget" (Label.float (1e5 *. float_of_int (1 + Prng.int rng 100)));
      (match !movie_nodes with
       | [] -> ()
       | earlier when Prng.bool rng ~p:0.2 ->
         let target = Prng.choose rng earlier in
         Graph.Builder.add_edge b m (sym "references") target;
         Graph.Builder.add_edge b target (sym "is_referenced_in") m
       | _ -> ());
      movie_nodes := m :: !movie_nodes
    end
  done;
  Graph.Builder.finish b
