module Graph = Ssd.Graph
module Label = Ssd.Label

let generate ?(seed = 23) ?(n_authors = 0) ?(cite_p = 0.4) ~n_papers () =
  let rng = Prng.create ~seed in
  let n_authors = if n_authors > 0 then n_authors else max 2 (n_papers / 4) in
  let b = Graph.Builder.create () in
  let root = Graph.Builder.add_node b in
  Graph.Builder.set_root b root;
  let value parent name v =
    let f = Graph.Builder.add_node b in
    Graph.Builder.add_edge b parent (Label.sym name) f;
    let leaf = Graph.Builder.add_node b in
    Graph.Builder.add_edge b f v leaf
  in
  let authors =
    Array.init n_authors (fun i ->
        let a = Graph.Builder.add_node b in
        value a "name" (Label.str (Printf.sprintf "Author %d" i));
        value a "affiliation" (Label.str (Printf.sprintf "University %d" (i mod 7)));
        a)
  in
  let papers = Array.make n_papers (-1) in
  for p = 0 to n_papers - 1 do
    let pn = Graph.Builder.add_node b in
    papers.(p) <- pn;
    Graph.Builder.add_edge b root (Label.sym "paper") pn;
    value pn "title" (Label.str (Printf.sprintf "On Semistructured Topic %d" p));
    value pn "year" (Label.int (1990 + (p * 10 / max 1 n_papers)));
    for _ = 1 to 1 + Prng.int rng 3 do
      Graph.Builder.add_edge b pn (Label.sym "author") authors.(Prng.int rng n_authors)
    done;
    if p > 0 && Prng.bool rng ~p:cite_p then
      for _ = 1 to 1 + Prng.int rng 2 do
        Graph.Builder.add_edge b pn (Label.sym "cites") papers.(Prng.int rng p)
      done
  done;
  Graph.Builder.finish b
