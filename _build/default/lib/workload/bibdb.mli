(** A bibliography database with shared author objects (section 1.2's
    data-integration flavor).

    Authors are {e shared nodes}: two papers by the same author point at
    the same object, which is exactly where object identity versus value
    equality matters (section 2) — the graph is a DAG whose tree
    unfolding is larger, making it the natural workload for the
    bisimulation-minimization experiment E6.  Citations go only to
    earlier papers, so the graph stays acyclic (and tree extraction is
    total). *)

val generate :
  ?seed:int -> ?n_authors:int -> ?cite_p:float -> n_papers:int -> unit -> Ssd.Graph.t
