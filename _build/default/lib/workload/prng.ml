type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 (Steele, Lea, Flood 2014). *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let float t = Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let bool t ~p = float t < p

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let size t ~lo ~hi =
  if hi <= lo then lo
  else begin
    (* Average of two draws biases toward the middle-low range. *)
    let a = int t (hi - lo + 1) and b = int t (hi - lo + 1) in
    lo + min a b
  end
