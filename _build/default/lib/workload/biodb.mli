(** ACeDB-style biological databases (section 1.1).

    ACeDB is the system that piqued the author's interest: a schema that
    only loosely constrains the data, and "structures that are naturally
    expressed in ACeDB, such as trees of arbitrary depth, that cannot be
    queried using conventional techniques."  The generator emulates that:
    a taxonomy of unbounded, data-dependent depth whose taxa irregularly
    carry optional fields.

    {v
      root --taxon--> {name: {"Taxon 0"}, rank: {"phylum"},
                       sequence_length: {482713}?,   (irregular)
                       habitat: {...}?,              (irregular)
                       child: <taxon>, child: <taxon>, ...}
    v} *)

val generate :
  ?seed:int -> ?branching:int -> ?max_depth:int -> n_taxa:int -> unit -> Ssd.Graph.t
