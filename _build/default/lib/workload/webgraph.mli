(** Synthetic web graphs (the substitution for section 1.1's motivating
    data source, the World-Wide-Web).

    {v
      root --host--> {name: {"host3.example"},
                      page: P, page: P, ...}
      P    = {url: {"http://..."}, title: {"..."},
              link: P', link: P'', ...}
    v}

    Links are cyclic and mix intra-host (probability [locality]) and
    cross-host targets, so regular path queries genuinely need
    cycle-terminating evaluation, and BFS site partitions (experiment E9)
    see realistic locality. *)

val generate :
  ?seed:int -> ?n_hosts:int -> ?avg_links:float -> ?locality:float -> n_pages:int -> unit ->
  Ssd.Graph.t
