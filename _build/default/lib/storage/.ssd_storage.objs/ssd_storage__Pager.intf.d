lib/storage/pager.mli: Ssd
