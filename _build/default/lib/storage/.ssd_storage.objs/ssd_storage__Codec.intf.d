lib/storage/codec.mli: Ssd
