lib/storage/codec.ml: Array Buffer Bytes Char Hashtbl Int64 List Printf Ssd String
