lib/storage/pager.ml: Array Fun Hashtbl Int64 List Queue Ssd
