(** Distributed evaluation of regular path queries (section 4).

    Following Suciu (VLDB'96), "an analysis of the query, combined with
    some segmentation of the graph into local sites, can be used to
    decompose a query into independent, parallel sub-queries".  We
    implement the work-efficient multi-round variant:

    + the graph is partitioned into [k] sites;
    + in each round, every site — independently, in parallel — expands
      the (node, automaton state) activations it received, staying within
      its own nodes; product pairs crossing to another site become
      {e messages} for the next round;
    + rounds repeat until no messages remain; a site never re-expands a
      pair it has seen (total work across all sites equals the
      centralized product size).

    (Suciu's one-round algorithm instead precomputes, per site, summaries
    for {e every} possible entry pair; it trades redundant local work —
    entries × states site runs — for a single communication round.  At
    web-graph cross-edge densities that redundancy is the dominant cost,
    so the multi-round variant is what one would deploy; the trade-off is
    discussed in EXPERIMENTS.md E9.)

    The answers provably equal centralized evaluation (property-tested
    against {!Ssd_automata.Product}); the interesting outputs are the
    cost-model numbers: messages shipped, rounds, per-site work, and the
    simulated parallel makespan. *)

(** [site.(u)] is the site that owns node [u]. *)
type partition = int array

(** Hash-random partition into [k] sites (worst-case locality). *)
val partition_random : seed:int -> k:int -> Ssd.Graph.t -> partition

(** Partition by contiguous BFS order (good locality — subtrees mostly
    stay on one site). *)
val partition_bfs : k:int -> Ssd.Graph.t -> partition

type stats = {
  sites : int;
  cross_edges : int; (** edges with endpoints on different sites *)
  rounds : int; (** communication rounds until quiescence *)
  messages : int; (** cross-site (node, state) activations shipped *)
  local_work : int array; (** product pairs expanded, per site *)
  makespan : int; (** Σ over rounds of the slowest site's work that round *)
  sequential_work : int; (** product pairs of the centralized run *)
}

(** [eval g partition nfa] returns the accepting nodes (sorted) and the
    cost-model statistics. *)
val eval : Ssd.Graph.t -> partition -> Ssd_automata.Nfa.t -> int list * stats
