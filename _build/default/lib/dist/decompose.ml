module Graph = Ssd.Graph
module Lpred = Ssd_automata.Lpred
module Nfa = Ssd_automata.Nfa

type partition = int array

let partition_random ~seed ~k g =
  Array.init (Graph.n_nodes g) (fun u -> Hashtbl.hash (seed, u) mod k)

let partition_bfs ~k g =
  let n = Graph.n_nodes g in
  let order = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let next = ref 0 in
  let visit u =
    if not seen.(u) then begin
      seen.(u) <- true;
      Queue.push u queue
    end
  in
  visit (Graph.root g);
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(u) <- !next;
    incr next;
    List.iter (fun (_, v) -> visit v) (Graph.succ g u)
  done;
  (* Unreachable nodes go to site 0; contiguous BFS ranks map to sites. *)
  let per_site = max 1 ((!next + k - 1) / k) in
  Array.map (fun rank -> if rank < 0 then 0 else min (k - 1) (rank / per_site)) order

type stats = {
  sites : int;
  cross_edges : int;
  rounds : int;
  messages : int;
  local_work : int array;
  makespan : int;
  sequential_work : int;
}

let eval g partition nfa =
  let n_sites = 1 + Array.fold_left max 0 partition in
  let closures = Nfa.closures nfa in
  let cross_edges =
    Graph.fold_labeled_edges
      (fun acc u _ v -> if partition.(u) <> partition.(v) then acc + 1 else acc)
      0 g
  in
  (* seen.(site) is that site's private visited set; a pair may be visited
     by several sites only if the same node is activated under the same
     state from different rounds — prevented by keying on (u, q) in the
     owner's set, so total work = centralized product size. *)
  let seen = Hashtbl.create 1024 in
  let answers = Hashtbl.create 64 in
  let local_work = Array.make n_sites 0 in
  let messages = ref 0 in
  let rounds = ref 0 in
  let makespan = ref 0 in
  (* inbox.(site) = pending activations for this round *)
  let inbox = Array.make n_sites [] in
  let deliver (u, q) =
    if not (Hashtbl.mem seen (u, q)) then begin
      Hashtbl.add seen (u, q) ();
      inbox.(partition.(u)) <- (u, q) :: inbox.(partition.(u))
    end
  in
  List.iter (fun q -> deliver (Graph.root g, q)) (Nfa.start_set nfa);
  let pending () = Array.exists (fun l -> l <> []) inbox in
  while pending () do
    incr rounds;
    let round_work = Array.make n_sites 0 in
    let outgoing = ref [] in
    Array.iteri
      (fun site activations ->
        inbox.(site) <- [];
        (* Local expansion: BFS within the site. *)
        let queue = Queue.create () in
        List.iter (fun p -> Queue.push p queue) activations;
        while not (Queue.is_empty queue) do
          let u, q = Queue.pop queue in
          round_work.(site) <- round_work.(site) + 1;
          if nfa.Nfa.accept.(q) then Hashtbl.replace answers u ();
          if nfa.Nfa.trans.(q) <> [] then
            List.iter
              (fun (l, v) ->
                List.iter
                  (fun (p, q') ->
                    if Lpred.matches p l then
                      List.iter
                        (fun q'' ->
                          if not (Hashtbl.mem seen (v, q'')) then
                            if partition.(v) = site then begin
                              Hashtbl.add seen (v, q'') ();
                              Queue.push (v, q'') queue
                            end
                            else begin
                              incr messages;
                              outgoing := (v, q'') :: !outgoing
                            end)
                        closures.(q'))
                  nfa.Nfa.trans.(q))
              (Graph.labeled_succ g u)
        done)
      inbox;
    Array.iteri (fun site w -> local_work.(site) <- local_work.(site) + w) round_work;
    makespan := !makespan + Array.fold_left max 0 round_work;
    List.iter deliver !outgoing
  done;
  (* Sequential baseline for the speedup column. *)
  let seq_seen = Hashtbl.create 1024 in
  let seq_queue = Queue.create () in
  let seq_push u q =
    if not (Hashtbl.mem seq_seen (u, q)) then begin
      Hashtbl.add seq_seen (u, q) ();
      Queue.push (u, q) seq_queue
    end
  in
  List.iter (seq_push (Graph.root g)) (Nfa.start_set nfa);
  while not (Queue.is_empty seq_queue) do
    let u, q = Queue.pop seq_queue in
    if nfa.Nfa.trans.(q) <> [] then
      List.iter
        (fun (l, v) ->
          List.iter
            (fun (p, q') -> if Lpred.matches p l then List.iter (seq_push v) closures.(q'))
            nfa.Nfa.trans.(q))
        (Graph.labeled_succ g u)
  done;
  let result = Hashtbl.fold (fun u () acc -> u :: acc) answers [] |> List.sort_uniq compare in
  ( result,
    {
      sites = n_sites;
      cross_edges;
      rounds = !rounds;
      messages = !messages;
      local_work;
      makespan = !makespan;
      sequential_work = Hashtbl.length seq_seen;
    } )
