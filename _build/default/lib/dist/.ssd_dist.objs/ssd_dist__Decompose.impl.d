lib/dist/decompose.ml: Array Hashtbl List Queue Ssd Ssd_automata
