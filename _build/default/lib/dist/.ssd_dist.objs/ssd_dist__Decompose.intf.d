lib/dist/decompose.mli: Ssd Ssd_automata
