type t = {
  n : int;
  start : int;
  accept : bool array;
  eps : int list array;
  trans : (Lpred.t * int) list array;
}

(* Thompson construction.  Fragments are (entry, exit) state pairs; exits
   have no outgoing transitions, so fragments compose by ε-wiring. *)

type builder = {
  mutable next : int;
  mutable beps : (int * int) list;
  mutable btrans : (int * Lpred.t * int) list;
}

let fresh b =
  let s = b.next in
  b.next <- b.next + 1;
  s

let wire b u v = b.beps <- (u, v) :: b.beps
let guard b u p v = b.btrans <- (u, p, v) :: b.btrans

let rec compile b = function
  | Regex.Void ->
    let i = fresh b and o = fresh b in
    (i, o)
  | Regex.Eps ->
    let i = fresh b and o = fresh b in
    wire b i o;
    (i, o)
  | Regex.Atom p ->
    let i = fresh b and o = fresh b in
    guard b i p o;
    (i, o)
  | Regex.Seq (r1, r2) ->
    let i1, o1 = compile b r1 in
    let i2, o2 = compile b r2 in
    wire b o1 i2;
    (i1, o2)
  | Regex.Alt (r1, r2) ->
    let i = fresh b and o = fresh b in
    let i1, o1 = compile b r1 in
    let i2, o2 = compile b r2 in
    wire b i i1;
    wire b i i2;
    wire b o1 o;
    wire b o2 o;
    (i, o)
  | Regex.Star r ->
    let i = fresh b and o = fresh b in
    let ri, ro = compile b r in
    wire b i ri;
    wire b i o;
    wire b ro ri;
    wire b ro o;
    (i, o)
  | Regex.Plus r -> compile b (Regex.Seq (r, Regex.Star r))
  | Regex.Opt r -> compile b (Regex.Alt (r, Regex.Eps))

let of_regex r =
  let b = { next = 0; beps = []; btrans = [] } in
  let start, final = compile b r in
  let n = b.next in
  let eps = Array.make n [] in
  List.iter (fun (u, v) -> eps.(u) <- v :: eps.(u)) b.beps;
  let trans = Array.make n [] in
  List.iter (fun (u, p, v) -> trans.(u) <- (p, v) :: trans.(u)) b.btrans;
  let accept = Array.make n false in
  accept.(final) <- true;
  { n; start; accept; eps; trans }

let of_string s = of_regex (Regex.parse s)

let eps_closure nfa states =
  let seen = Array.make nfa.n false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter go nfa.eps.(s)
    end
  in
  List.iter go states;
  let out = ref [] in
  for s = nfa.n - 1 downto 0 do
    if seen.(s) then out := s :: !out
  done;
  !out

let closures nfa = Array.init nfa.n (fun q -> eps_closure nfa [ q ])

let start_set nfa = eps_closure nfa [ nfa.start ]

let step nfa states l =
  let targets =
    List.concat_map
      (fun s ->
        List.filter_map (fun (p, t) -> if Lpred.matches p l then Some t else None) nfa.trans.(s))
      states
  in
  eps_closure nfa targets

let accepts nfa states = List.exists (fun s -> nfa.accept.(s)) states

let matches nfa word = accepts nfa (List.fold_left (step nfa) (start_set nfa) word)
