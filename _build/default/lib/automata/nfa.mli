(** Nondeterministic finite automata over label predicates.

    Built from {!Regex.t} by Thompson's construction.  Because transition
    guards are predicates rather than letters, the automaton is executable
    on any label without fixing an alphabet; {!Dfa} fixes one when a
    deterministic machine is needed. *)

type t = private {
  n : int; (** number of states, ids [0..n-1] *)
  start : int;
  accept : bool array;
  eps : int list array; (** ε-transitions *)
  trans : (Lpred.t * int) list array; (** guarded transitions *)
}

val of_regex : Regex.t -> t

(** Convenience: [of_string s = of_regex (Regex.parse s)]. *)
val of_string : string -> t

(** ε-closure of a set of states; result sorted and duplicate-free. *)
val eps_closure : t -> int list -> int list

(** Per-state ε-closures, precomputed: [closures nfa).(q)] is
    [eps_closure nfa [q]].  Product traversals call this once and index,
    rather than recomputing closures per transition. *)
val closures : t -> int list array

(** The closed start set. *)
val start_set : t -> int list

(** One label step from a closed set, result closed. *)
val step : t -> int list -> Ssd.Label.t -> int list

(** Does the closed set contain an accepting state? *)
val accepts : t -> int list -> bool

(** Word membership; agrees with {!Regex.matches} (property-tested). *)
val matches : t -> Ssd.Label.t list -> bool
