(** Deterministic automata over a fixed finite label alphabet.

    Label predicates make the true alphabet infinite, so determinization is
    relative to a declared alphabet — in practice the set of labels that
    actually occur in a data graph (plus one implicit "other" class for
    everything else, which every predicate either accepts or rejects
    uniformly only if it is label-independent; we conservatively route
    unknown labels through a per-label predicate evaluation in {!step}).

    Used for automaton minimization (the optimization ablation, experiment
    E8) and DataGuide-style query pruning. *)

type t

(** [of_nfa ~alphabet nfa]: subset construction restricted to [alphabet].
    Words containing labels outside the alphabet are rejected. *)
val of_nfa : alphabet:Ssd.Label.t list -> Nfa.t -> t

val n_states : t -> int
val start : t -> int

(** [step d q l] is [Some q'] or [None] when rejecting (sink). *)
val step : t -> int -> Ssd.Label.t -> int option

val is_accept : t -> int -> bool
val matches : t -> Ssd.Label.t list -> bool

(** Hopcroft-style minimization (implemented as Moore partition
    refinement).  Preserves the language over the declared alphabet. *)
val minimize : t -> t
