lib/automata/lpred.mli: Format Ssd
