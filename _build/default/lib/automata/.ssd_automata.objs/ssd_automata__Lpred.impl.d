lib/automata/lpred.ml: Format Ssd Stdlib String
