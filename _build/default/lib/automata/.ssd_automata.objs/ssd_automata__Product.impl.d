lib/automata/product.ml: Array Dfa Hashtbl List Lpred Nfa Queue Regex Ssd
