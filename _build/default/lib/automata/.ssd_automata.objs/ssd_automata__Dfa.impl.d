lib/automata/dfa.ml: Array Fun Hashtbl List Map Nfa Ssd
