lib/automata/product.mli: Dfa Nfa Regex Ssd
