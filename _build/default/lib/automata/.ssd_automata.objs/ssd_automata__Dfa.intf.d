lib/automata/dfa.mli: Nfa Ssd
