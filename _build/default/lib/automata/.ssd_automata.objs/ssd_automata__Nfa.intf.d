lib/automata/nfa.mli: Lpred Regex Ssd
