lib/automata/regex.ml: Buffer Format List Lpred Printf Ssd Stdlib String
