lib/automata/regex.mli: Format Lpred Ssd
