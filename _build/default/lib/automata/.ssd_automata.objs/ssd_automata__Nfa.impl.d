lib/automata/nfa.ml: Array List Lpred Regex
