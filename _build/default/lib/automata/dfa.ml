module Label = Ssd.Label

module Label_map = Map.Make (struct
  type t = Label.t

  let compare = Label.compare
end)

type t = {
  alphabet : Label.t array;
  index : int Label_map.t; (* label -> column *)
  start : int;
  accept : bool array;
  delta : int array array; (* delta.(q).(col) = q', or -1 for reject *)
}

let n_states d = Array.length d.accept
let start d = d.start
let is_accept d q = d.accept.(q)

let step d q l =
  match Label_map.find_opt l d.index with
  | None -> None
  | Some col ->
    let q' = d.delta.(q).(col) in
    if q' < 0 then None else Some q'

let matches d word =
  let rec go q = function
    | [] -> is_accept d q
    | l :: rest ->
      (match step d q l with
       | None -> false
       | Some q' -> go q' rest)
  in
  go d.start word

let of_nfa ~alphabet nfa =
  let alphabet = List.sort_uniq Label.compare alphabet in
  let alphabet = Array.of_list alphabet in
  let index =
    Array.to_list alphabet
    |> List.mapi (fun i l -> (l, i))
    |> List.fold_left (fun m (l, i) -> Label_map.add l i m) Label_map.empty
  in
  let n_letters = Array.length alphabet in
  (* Subset construction; state sets are canonical sorted int lists. *)
  let ids = Hashtbl.create 64 in
  let states = ref [] in
  let n = ref 0 in
  let intern set =
    match Hashtbl.find_opt ids set with
    | Some i -> (i, false)
    | None ->
      let i = !n in
      incr n;
      Hashtbl.add ids set i;
      states := set :: !states;
      (i, true)
  in
  let start_set = Nfa.start_set nfa in
  let rows = ref [] in
  let accepts = ref [] in
  let rec explore set id =
    let row = Array.make n_letters (-1) in
    Array.iteri
      (fun col l ->
        let next = Nfa.step nfa set l in
        if next <> [] then begin
          let next_id, fresh = intern next in
          row.(col) <- next_id;
          if fresh then explore next next_id
        end)
      alphabet;
    rows := (id, row) :: !rows;
    accepts := (id, Nfa.accepts nfa set) :: !accepts
  in
  let start_id, _ = intern start_set in
  explore start_set start_id;
  let delta = Array.make !n [||] in
  List.iter (fun (id, row) -> delta.(id) <- row) !rows;
  let accept = Array.make !n false in
  List.iter (fun (id, acc) -> accept.(id) <- acc) !accepts;
  { alphabet; index; start = start_id; accept; delta }

let minimize d =
  let n = n_states d in
  let n_letters = Array.length d.alphabet in
  (* Moore refinement with an explicit reject sink as block -1.  The
     initial partition must use dense block ids: refinement stops when the
     block count is stable, so a gap in the initial ids (e.g. every state
     accepting => all in block 1, block 0 empty) would fake one extra
     block and end refinement a round early. *)
  let two_classes = Array.exists Fun.id d.accept && Array.exists not d.accept in
  let block =
    Array.init n (fun q -> if two_classes && d.accept.(q) then 1 else 0)
  in
  let block_of q = if q < 0 then -1 else block.(q) in
  let changed = ref true in
  while !changed do
    changed := false;
    let table = Hashtbl.create n in
    let next = ref 0 in
    let new_block = Array.make n 0 in
    for q = 0 to n - 1 do
      let sig_q = Array.init n_letters (fun col -> block_of d.delta.(q).(col)) in
      let key = (block.(q), Array.to_list sig_q) in
      match Hashtbl.find_opt table key with
      | Some b -> new_block.(q) <- b
      | None ->
        Hashtbl.add table key !next;
        new_block.(q) <- !next;
        incr next
    done;
    let n_old = Array.fold_left (fun acc b -> max acc (b + 1)) 0 block in
    if !next <> n_old then changed := true;
    Array.blit new_block 0 block 0 n
  done;
  let n_blocks = Array.fold_left (fun acc b -> max acc (b + 1)) 0 block in
  let delta = Array.make n_blocks [||] in
  let accept = Array.make n_blocks false in
  let done_ = Array.make n_blocks false in
  for q = 0 to n - 1 do
    if not done_.(block.(q)) then begin
      done_.(block.(q)) <- true;
      accept.(block.(q)) <- d.accept.(q);
      delta.(block.(q)) <-
        Array.init n_letters (fun col ->
            let q' = d.delta.(q).(col) in
            if q' < 0 then -1 else block.(q'))
    end
  done;
  { d with start = block.(d.start); accept; delta }
