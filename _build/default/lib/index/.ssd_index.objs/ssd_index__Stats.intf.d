lib/index/stats.mli: Format Ssd
