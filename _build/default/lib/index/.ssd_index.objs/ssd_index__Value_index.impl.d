lib/index/value_index.ml: Hashtbl List Option Ssd
