lib/index/value_index.mli: Ssd
