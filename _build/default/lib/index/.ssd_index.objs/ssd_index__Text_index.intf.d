lib/index/text_index.mli: Ssd
