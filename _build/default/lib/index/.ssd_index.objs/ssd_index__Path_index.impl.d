lib/index/path_index.ml: Hashtbl Int List Option Set Ssd
