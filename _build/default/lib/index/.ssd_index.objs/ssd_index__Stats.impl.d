lib/index/stats.ml: Format Hashtbl List Option Ssd Stdlib
