lib/index/text_index.ml: Array Buffer Hashtbl List Option Ssd String
