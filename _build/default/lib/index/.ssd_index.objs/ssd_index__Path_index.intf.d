lib/index/path_index.mli: Ssd
