(** Descriptive statistics of a data graph — what a query optimizer would
    keep as its catalog, and what the experiment harness prints about each
    workload. *)

type t = {
  n_nodes : int;
  n_edges : int; (** labeled edges after ε-elimination *)
  n_distinct_labels : int;
  n_symbols : int; (** distinct [Sym] labels *)
  n_leaves : int; (** nodes with no outgoing labeled edge *)
  max_out_degree : int;
  cyclic : bool;
  depth : int option; (** longest root path; [None] when cyclic *)
}

val compute : Ssd.Graph.t -> t

(** The [k] most frequent labels with their edge counts, descending. *)
val top_labels : Ssd.Graph.t -> k:int -> (Ssd.Label.t * int) list

val pp : Format.formatter -> t -> unit
