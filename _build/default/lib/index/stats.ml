module Label = Ssd.Label
module Graph = Ssd.Graph

type t = {
  n_nodes : int;
  n_edges : int;
  n_distinct_labels : int;
  n_symbols : int;
  n_leaves : int;
  max_out_degree : int;
  cyclic : bool;
  depth : int option;
}

let longest_path g =
  (* Longest root-to-node path in an acyclic graph, by DFS with memo. *)
  let memo = Hashtbl.create 64 in
  let rec go u =
    match Hashtbl.find_opt memo u with
    | Some d -> d
    | None ->
      let d =
        List.fold_left (fun acc (_, v) -> max acc (1 + go v)) 0 (Graph.labeled_succ g u)
      in
      Hashtbl.add memo u d;
      d
  in
  go (Graph.root g)

let compute g =
  let g = Graph.eps_eliminate g in
  let labels = Hashtbl.create 256 in
  Graph.fold_labeled_edges (fun () _ l _ -> Hashtbl.replace labels l ()) () g;
  let n_symbols =
    Hashtbl.fold (fun l () acc -> if Label.is_sym l then acc + 1 else acc) labels 0
  in
  let n_leaves = ref 0 and max_deg = ref 0 in
  for u = 0 to Graph.n_nodes g - 1 do
    let d = List.length (Graph.succ g u) in
    if d = 0 then incr n_leaves;
    if d > !max_deg then max_deg := d
  done;
  let cyclic = not (Graph.is_acyclic g) in
  {
    n_nodes = Graph.n_nodes g;
    n_edges = Graph.n_edges g;
    n_distinct_labels = Hashtbl.length labels;
    n_symbols;
    n_leaves = !n_leaves;
    max_out_degree = !max_deg;
    cyclic;
    depth = (if cyclic then None else Some (longest_path g));
  }

let top_labels g ~k =
  let counts = Hashtbl.create 256 in
  Graph.fold_labeled_edges
    (fun () _ l _ ->
      Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
    () (Graph.eps_eliminate g);
  let all = Hashtbl.fold (fun l c acc -> (l, c) :: acc) counts [] in
  let sorted = List.sort (fun (_, c1) (_, c2) -> Stdlib.compare c2 c1) all in
  List.filteri (fun i _ -> i < k) sorted

let pp fmt s =
  Format.fprintf fmt
    "@[<v>nodes: %d@,edges: %d@,distinct labels: %d (symbols: %d)@,leaves: %d@,max out-degree: %d@,cyclic: %b@,depth: %s@]"
    s.n_nodes s.n_edges s.n_distinct_labels s.n_symbols s.n_leaves s.max_out_degree
    s.cyclic
    (match s.depth with None -> "-" | Some d -> string_of_int d)
