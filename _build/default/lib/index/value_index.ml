module Label = Ssd.Label
module Graph = Ssd.Graph

type occurrence = {
  src : int;
  dst : int;
}

module Label_tbl = Hashtbl.Make (struct
  type t = Label.t

  let equal = Label.equal
  let hash = Label.hash
end)

type t = occurrence list Label_tbl.t

let build g =
  let idx = Label_tbl.create 256 in
  Graph.fold_labeled_edges
    (fun () src l dst ->
      let occs = Option.value ~default:[] (Label_tbl.find_opt idx l) in
      Label_tbl.replace idx l ({ src; dst } :: occs))
    () g;
  idx

let find idx l = Option.value ~default:[] (Label_tbl.find_opt idx l)
let find_nodes idx l = List.map (fun o -> o.dst) (find idx l)
let mem idx l = Label_tbl.mem idx l
let n_labels idx = Label_tbl.length idx

let scan g l =
  Graph.fold_labeled_edges
    (fun acc src l' dst -> if Label.equal l l' then { src; dst } :: acc else acc)
    [] g
