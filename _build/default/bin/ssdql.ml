(* ssdql — command-line front end to the semistructured data library.

   Subcommands:
     query      run an UnQL / Lorel / WebSQL / datalog query
     convert    convert between ssd syntax, JSON, OEM and triples
     dataguide  build and print the strong DataGuide of a data file
     validate   check a data file against a graph schema
     update     apply insert/delete/rename statements
     stats      print graph statistics
     gen        emit a synthetic workload in ssd syntax *)

module Graph = Ssd.Graph
module Label = Ssd.Label

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_data path =
  let src = read_file path in
  if Filename.check_suffix path ".json" then
    Graph.of_tree (Ssd.Json.to_tree (Ssd.Json.parse src))
  else if Filename.check_suffix path ".oem" then Ssd.Oem.to_graph (Ssd.Oem.parse src)
  else if Filename.check_suffix path ".bin" then Ssd_storage.Codec.read_file path
  else Ssd.Syntax.parse_graph src

let print_graph g = print_endline (Graph.to_string g)

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

let query_cmd data lang query_text =
  let db = load_data data in
  match lang with
  | "unql" -> print_graph (Unql.Eval.run ~db query_text)
  | "lorel" -> print_graph (Lorel.Eval.run ~db query_text)
  | "websql" -> print_endline (Relstore.Relation.to_string (Websql.Eval.run ~db query_text))
  | "datalog" ->
    let program = Relstore.Datalog.parse query_text in
    let edb = Relstore.Triple.edb db in
    let results = Relstore.Datalog.eval ~edb program in
    List.iter
      (fun (pred, tuples) ->
        Printf.printf "%s: %d tuples\n" pred (List.length tuples);
        List.iter
          (fun t ->
            Printf.printf "  %s(%s)\n" pred
              (String.concat ", " (List.map Label.to_string t)))
          tuples)
      results
  | other -> Printf.eprintf "unknown language %s (use unql, lorel, websql or datalog)\n" other

(* ------------------------------------------------------------------ *)
(* convert                                                             *)
(* ------------------------------------------------------------------ *)

let convert_cmd data target =
  let g = load_data data in
  match target with
  | "ssd" -> print_graph g
  | "json" -> print_endline (Ssd.Json.to_string (Ssd.Json.of_tree (Graph.to_tree g)))
  | "triples" ->
    print_endline (Relstore.Relation.to_string (Relstore.Triple.edges g));
    print_endline (Relstore.Relation.to_string (Relstore.Triple.root g))
  | "oem" -> print_endline (Ssd.Oem.to_string (Ssd.Oem.of_graph g))
  | other -> Printf.eprintf "unknown target %s (use ssd, json, oem or triples)\n" other

(* ------------------------------------------------------------------ *)
(* dataguide                                                           *)
(* ------------------------------------------------------------------ *)

let dataguide_cmd data max_len =
  let g = load_data data in
  let guide = Ssd_schema.Dataguide.build g in
  Printf.printf "data nodes: %d, guide nodes: %d\n" (Graph.n_nodes g)
    (Ssd_schema.Dataguide.n_nodes guide);
  List.iter
    (fun path ->
      if path <> [] then
        print_endline (String.concat "." (List.map Label.to_string path)))
    (Ssd_schema.Dataguide.paths guide ~max_len)

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

let validate_cmd data schema_path =
  let g = load_data data in
  let schema = Ssd_schema.Gschema.parse (read_file schema_path) in
  if Ssd_schema.Gschema.conforms g schema then begin
    print_endline "conforms";
    exit 0
  end
  else begin
    let bad = Ssd_schema.Gschema.violations g schema in
    Printf.printf "does NOT conform: %d violating nodes (showing up to 10)\n"
      (List.length bad);
    List.iteri (fun i u -> if i < 10 then Printf.printf "  node %d\n" u) bad;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* update                                                              *)
(* ------------------------------------------------------------------ *)

let update_cmd data stmts =
  let db = load_data data in
  print_graph (Lorel.Update.run ~db stmts)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_cmd data =
  let g = load_data data in
  Format.printf "%a@." Ssd_index.Stats.pp (Ssd_index.Stats.compute g);
  Format.printf "top labels:@.";
  List.iter
    (fun (l, c) -> Format.printf "  %s: %d@." (Label.to_string l) c)
    (Ssd_index.Stats.top_labels g ~k:10)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen_cmd kind n seed =
  let g =
    match kind with
    | "movies" -> Ssd_workload.Movies.generate ~seed ~n_entries:n ()
    | "figure1" -> Ssd_workload.Movies.figure1 ()
    | "web" -> Ssd_workload.Webgraph.generate ~seed ~n_pages:n ()
    | "bio" -> Ssd_workload.Biodb.generate ~seed ~n_taxa:n ()
    | "bib" -> Ssd_workload.Bibdb.generate ~seed ~n_papers:n ()
    | "randtree" -> Ssd_workload.Randtree.generate ~seed ~regularity:0.5 ~n_edges:n ()
    | other ->
      Printf.eprintf "unknown workload %s (movies|figure1|web|bio|bib|randtree)\n" other;
      exit 2
  in
  print_graph g

(* ------------------------------------------------------------------ *)
(* cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let data_arg =
  Arg.(required & opt (some file) None & info [ "d"; "data" ] ~docv:"FILE"
         ~doc:"Data file (.ssd syntax; .json, .oem and .bin are auto-detected).")

let query_t =
  let lang =
    Arg.(value & opt string "unql" & info [ "l"; "lang" ] ~docv:"LANG"
           ~doc:"Query language: unql, lorel, websql or datalog.")
  in
  let q = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v (Cmd.info "query" ~doc:"Run a query against a data file")
    Term.(const query_cmd $ data_arg $ lang $ q)

let convert_t =
  let target =
    Arg.(value & opt string "ssd" & info [ "t"; "to" ] ~docv:"FMT"
           ~doc:"Target format: ssd, json, oem or triples.")
  in
  Cmd.v (Cmd.info "convert" ~doc:"Convert between data formats")
    Term.(const convert_cmd $ data_arg $ target)

let dataguide_t =
  let max_len =
    Arg.(value & opt int 4 & info [ "max-len" ] ~docv:"N" ~doc:"Path length cutoff.")
  in
  Cmd.v (Cmd.info "dataguide" ~doc:"Print the strong DataGuide")
    Term.(const dataguide_cmd $ data_arg $ max_len)

let validate_t =
  let schema =
    Arg.(required & opt (some file) None & info [ "s"; "schema" ] ~docv:"FILE"
           ~doc:"Graph schema file.")
  in
  Cmd.v (Cmd.info "validate" ~doc:"Validate data against a graph schema")
    Term.(const validate_cmd $ data_arg $ schema)

let update_t =
  let stmts = Arg.(required & pos 0 (some string) None & info [] ~docv:"STATEMENTS") in
  Cmd.v
    (Cmd.info "update" ~doc:"Apply insert/delete/rename statements; print the new database")
    Term.(const update_cmd $ data_arg $ stmts)

let stats_t =
  Cmd.v (Cmd.info "stats" ~doc:"Print graph statistics") Term.(const stats_cmd $ data_arg)

let gen_t =
  let kind = Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND") in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc:"Size parameter.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic workload")
    Term.(const gen_cmd $ kind $ n $ seed)

let () =
  let doc = "semistructured data toolbox (Buneman, PODS'97 reproduction)" in
  let info = Cmd.info "ssdql" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ query_t; convert_t; dataguide_t; validate_t; update_t; stats_t; gen_t ]))
