(* Shared measurement helpers: bechamel for per-operation timings, plus a
   simple wall-clock for one-shot constructions. *)

open Bechamel
open Toolkit

let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]

(* [measure cases] runs each (name, thunk) under bechamel's monotonic
   clock and returns (name, ns/run) in input order. *)
let measure ?(quota = 0.5) cases =
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) cases
  in
  let grouped = Test.make_grouped ~name:"g" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let res = Analyze.all ols Instance.monotonic_clock raw in
  List.map
    (fun (name, _) ->
      let key = "g/" ^ name in
      let est =
        match Hashtbl.find_opt res key with
        | Some o -> (
          match Analyze.OLS.estimates o with
          | Some (e :: _) -> e
          | _ -> nan)
        | None -> nan
      in
      (name, est))
    cases

(* One-shot wall-clock (seconds), minimum of [runs]. *)
let time_once ?(runs = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let ns_to_string ns =
  if Float.is_nan ns then "-"
  else if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let s_to_string s = ns_to_string (s *. 1e9)

(* Markdown-ish table printing. *)
let print_table ~title ~header rows =
  Printf.printf "\n### %s\n\n" title;
  let all = header :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  ignore all;
  let print_row row =
    print_string "| ";
    List.iter2 (fun w cell -> Printf.printf "%-*s | " w cell) widths row;
    print_newline ()
  in
  print_row header;
  print_string "|";
  List.iter (fun w -> print_string (String.make (w + 2) '-') ; print_string "|") widths;
  print_newline ();
  List.iter print_row rows

let section name = Printf.printf "\n## %s\n" name
