bench/bench_util.ml: Analyze Bechamel Benchmark Float Hashtbl Instance List Measure Option Printf Staged String Test Time Toolkit Unix
