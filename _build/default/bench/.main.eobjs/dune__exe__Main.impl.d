bench/main.ml: Array Bench_util Hashtbl List Lorel Option Printf Relstore Ssd Ssd_automata Ssd_dist Ssd_index Ssd_schema Ssd_storage Ssd_workload String Sys Unql Websql
