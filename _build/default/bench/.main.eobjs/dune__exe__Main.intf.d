bench/main.mli:
