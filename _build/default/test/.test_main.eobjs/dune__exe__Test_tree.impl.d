test/test_tree.ml: Alcotest Fun Gen List Q Ssd String
