test/test_oem.ml: Alcotest Gen List Printf Ssd Ssd_automata Ssd_workload
