test/test_update.ml: Alcotest Gen List Lorel Printf Ssd
