test/test_dist.ml: Alcotest Array Gen List Q Ssd Ssd_automata Ssd_dist Ssd_workload
