test/test_bisim.ml: Alcotest Array Gen List Q Ssd
