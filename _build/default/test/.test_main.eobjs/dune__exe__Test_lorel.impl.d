test/test_lorel.ml: Alcotest Gen List Lorel Printf Ssd Ssd_index Ssd_workload
