test/test_encode.ml: Alcotest Gen List Q Ssd
