test/test_pathvar.ml: Alcotest Gen List Q Ssd Ssd_schema Ssd_workload Unql
