test/test_workload.ml: Alcotest List Printf Ssd Ssd_index Ssd_schema Ssd_workload
