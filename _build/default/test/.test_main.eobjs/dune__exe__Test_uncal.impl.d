test/test_uncal.ml: Alcotest Gen List Q Ssd Unql
