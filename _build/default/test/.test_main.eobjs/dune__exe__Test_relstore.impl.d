test/test_relstore.ml: Alcotest Array Gen List Q Relstore Ssd Ssd_workload
