test/test_smoke.ml: Alcotest List Lorel Relstore Ssd Ssd_automata Ssd_dist Ssd_index Ssd_schema Ssd_workload Unql
