test/test_label.ml: Alcotest Fun Gen List Printf Q Ssd Stdlib String
