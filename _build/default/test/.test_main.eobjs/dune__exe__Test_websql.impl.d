test/test_websql.ml: Alcotest Array Hashtbl List Printf Relstore Ssd Ssd_workload Websql
