test/test_schema.ml: Alcotest Gen List Printf Q Ssd Ssd_automata Ssd_index Ssd_schema Ssd_workload
