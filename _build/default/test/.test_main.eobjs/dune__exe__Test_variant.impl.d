test/test_variant.ml: Alcotest Gen List Q Ssd
