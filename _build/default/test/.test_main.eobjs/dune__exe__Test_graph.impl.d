test/test_graph.ml: Alcotest Array Fun Gen List Printf Q Ssd
