test/test_syntax.ml: Alcotest Gen Printf Ssd
