test/test_automata.ml: Alcotest Array Gen List Printf Q Ssd Ssd_automata Ssd_index Ssd_workload
