test/test_datalog.ml: Alcotest Format Gen List Relstore Ssd Ssd_automata
