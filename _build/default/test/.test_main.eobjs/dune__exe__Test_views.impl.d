test/test_views.ml: Alcotest List Ssd Ssd_workload Unql
