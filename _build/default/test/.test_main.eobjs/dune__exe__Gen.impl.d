test/gen.ml: Array Hashtbl List QCheck2 QCheck_alcotest Relstore Ssd Ssd_automata
