test/test_index.ml: Alcotest Gen List Option Q Ssd Ssd_index Ssd_workload
