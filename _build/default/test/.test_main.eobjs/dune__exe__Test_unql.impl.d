test/test_unql.ml: Alcotest Gen List Printf Ssd Ssd_schema Ssd_workload Unql
