test/test_storage.ml: Alcotest Array Bytes Filename Fun Gen List Printf Q Ssd Ssd_storage Ssd_workload Sys
