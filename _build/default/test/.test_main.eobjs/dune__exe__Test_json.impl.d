test/test_json.ml: Alcotest Gen List Printf Q Ssd String
