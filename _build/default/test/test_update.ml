module Update = Lorel.Update
module Graph = Ssd.Graph
module Tree = Ssd.Tree
module Label = Ssd.Label
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let db () = Ssd.Syntax.parse_graph {| {movie: {title: "Casablanca", year: 1942},
                                       movie: {title: "Annie Hall"}} |}

let expect got expected = check "result" true (Ssd.Bisim.equal got (Ssd.Syntax.parse_graph expected))

let insert_grafts () =
  let g = Update.run ~db:(db ()) {| insert DB.movie := {seen: true} |} in
  expect g
    {| {movie: {title: "Casablanca", year: 1942, seen: true},
        movie: {title: "Annie Hall", seen: true}} |}

let insert_shares_object_identity () =
  (* one grafted subobject shared by all targets: graph stays small *)
  let g = Update.run ~db:(db ()) {| insert DB.movie := {tag: {a, b, c}} |} in
  let tree_edges = Tree.size (Graph.to_tree g) in
  check "shared graft" true (Graph.n_edges g < tree_edges)

let insert_at_empty_path_is_noop () =
  let g = Update.run ~db:(db ()) {| insert DB.nosuch := {x} |} in
  check "no-op" true (Ssd.Bisim.equal g (db ()))

let delete_label () =
  let g = Update.run ~db:(db ()) {| delete DB.movie.year |} in
  expect g {| {movie: {title: "Casablanca"}, movie: {title: "Annie Hall"}} |}

let delete_wildcard () =
  let g = Update.run ~db:(db ()) {| delete DB.movie.% |} in
  expect g {| {movie: {}, movie: {}} |}

let delete_collects_garbage () =
  let g = Update.run ~db:(db ()) {| delete DB.% |} in
  check_int "only the root remains" 1 (Graph.n_nodes g)

let rename_label () =
  let g = Update.run ~db:(db ()) {| rename DB.movie.title to name |} in
  expect g
    {| {movie: {name: {"Casablanca"}, year: 1942}, movie: {name: {"Annie Hall"}}} |}

let rename_is_path_scoped () =
  let db = Ssd.Syntax.parse_graph {| {a: {x: {1}}, b: {x: {2}}} |} in
  let g = Update.run ~db {| rename DB.a.x to y |} in
  check "only under a" true
    (Ssd.Bisim.equal g (Ssd.Syntax.parse_graph {| {a: {y: {1}}, b: {x: {2}}} |}))

let statement_sequence () =
  let g =
    Update.run ~db:(db ())
      {| insert DB.movie := {genre: "classic"};
         delete DB.movie.year;
         rename DB.movie.genre to category |}
  in
  expect g
    {| {movie: {title: "Casablanca", category: {"classic"}},
        movie: {title: "Annie Hall", category: {"classic"}}} |}

let functional_updates () =
  let before = db () in
  let _ = Update.run ~db:before {| delete DB.movie.% |} in
  check "input untouched" true (Ssd.Bisim.equal before (db ()))

let parse_errors () =
  List.iter
    (fun src ->
      check (Printf.sprintf "reject %s" src) true
        (match Update.parse src with
         | exception Update.Parse_error _ -> true
         | _ -> false))
    [
      "frobnicate DB.x";
      "insert DB.movie";
      "delete DB";
      "rename DB.movie.title";
      "delete DB.movie.#";
    ]

let properties =
  [
    qtest "delete then query finds nothing" ~count:40 graph (fun g ->
        let g' = Update.run ~db:g "delete DB.a" in
        Lorel.Eval.eval_path ~db:g' ~env:[] (Lorel.Parser.parse_path "DB.a") = []);
    qtest "rename preserves edge count" ~count:40 graph (fun g ->
        let g0 = Graph.gc (Graph.eps_eliminate g) in
        let g' = Update.run ~db:g0 "rename DB.a to zz9" in
        Graph.n_edges g' = Graph.n_edges g0);
    qtest "insert adds exactly the grafted edges per target" ~count:40 graph (fun g ->
        let g0 = Graph.gc (Graph.eps_eliminate g) in
        let n_targets =
          List.length (Lorel.Eval.eval_path ~db:g0 ~env:[] (Lorel.Parser.parse_path "DB.b"))
        in
        let g' = Update.run ~db:g0 "insert DB.b := {fresh_marker}" in
        Graph.n_edges g' = Graph.n_edges g0 + n_targets);
  ]

let tests =
  [
    Alcotest.test_case "insert grafts" `Quick insert_grafts;
    Alcotest.test_case "insert shares object identity" `Quick insert_shares_object_identity;
    Alcotest.test_case "insert at empty path is a no-op" `Quick insert_at_empty_path_is_noop;
    Alcotest.test_case "delete label" `Quick delete_label;
    Alcotest.test_case "delete wildcard" `Quick delete_wildcard;
    Alcotest.test_case "delete collects garbage" `Quick delete_collects_garbage;
    Alcotest.test_case "rename label" `Quick rename_label;
    Alcotest.test_case "rename is path-scoped" `Quick rename_is_path_scoped;
    Alcotest.test_case "statement sequence" `Quick statement_sequence;
    Alcotest.test_case "updates are functional" `Quick functional_updates;
    Alcotest.test_case "parse errors" `Quick parse_errors;
  ]
  @ properties
