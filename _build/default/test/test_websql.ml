module Relation = Relstore.Relation
module Label = Ssd.Label
module Graph = Ssd.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small handcrafted web: two hosts, known link structure.
     host0: p0 -> p1 (local), p0 => q0 (global), p1 -> p0 (local, cycle)
     host1: q0 => p1 (global) *)
let tiny_web () =
  let b = Graph.Builder.create () in
  let root = Graph.Builder.add_node b in
  Graph.Builder.set_root b root;
  let host () =
    let h = Graph.Builder.add_node b in
    Graph.Builder.add_edge b root (Label.sym "host") h;
    h
  in
  let h0 = host () and h1 = host () in
  let page h name title =
    let p = Graph.Builder.add_node b in
    Graph.Builder.add_edge b h (Label.sym "page") p;
    let urln = Graph.Builder.add_node b in
    Graph.Builder.add_edge b p (Label.sym "url") urln;
    let urll = Graph.Builder.add_node b in
    Graph.Builder.add_edge b urln (Label.str name) urll;
    let titlen = Graph.Builder.add_node b in
    Graph.Builder.add_edge b p (Label.sym "title") titlen;
    let titlel = Graph.Builder.add_node b in
    Graph.Builder.add_edge b titlen (Label.str title) titlel;
    p
  in
  let p0 = page h0 "u:p0" "Start here" in
  let p1 = page h0 "u:p1" "Second page" in
  let q0 = page h1 "u:q0" "Other host" in
  let link a b' = Graph.Builder.add_edge b a (Label.sym "link") b' in
  link p0 p1;
  link p0 q0;
  link p1 p0;
  link q0 p1;
  Graph.Builder.finish b

let rows r = Relation.rows r
let texts_of r col = List.map (fun row -> row.(col)) (rows r)

let local_navigation () =
  let r =
    Websql.Eval.run ~db:(tiny_web ())
      {| SELECT d.url FROM DOCUMENT d SUCH THAT "u:p0" ->* d |}
  in
  (* local-only closure from p0: p0 and p1 but not q0 *)
  check "p0 and p1" true
    (List.sort compare (texts_of r 0) = [ Label.str "u:p0"; Label.str "u:p1" ])

let global_navigation () =
  let r =
    Websql.Eval.run ~db:(tiny_web ())
      {| SELECT d.url FROM DOCUMENT d SUCH THAT "u:p0" => d |}
  in
  check "only the cross-host link" true (texts_of r 0 = [ Label.str "u:q0" ])

let mixed_navigation () =
  let r =
    Websql.Eval.run ~db:(tiny_web ())
      {| SELECT d.url FROM DOCUMENT d SUCH THAT "u:p0" (-> | =>)* d |}
  in
  check_int "everything reachable" 3 (Relation.cardinality r)

let chained_docspecs () =
  let r =
    Websql.Eval.run ~db:(tiny_web ())
      {| SELECT d.url, e.url
         FROM DOCUMENT d SUCH THAT "u:p0" => d,
              DOCUMENT e SUCH THAT d ~> e |}
  in
  (* d = q0; e = q0's link targets = p1 *)
  check "join through variables" true
    (rows r = [ [| Label.str "u:q0"; Label.str "u:p1" |] ])

let where_conditions () =
  let db = tiny_web () in
  let r =
    Websql.Eval.run ~db
      {| SELECT d.title FROM ANYWHERE d WHERE d.title CONTAINS "page" |}
  in
  check "contains" true (texts_of r 0 = [ Label.str "Second page" ]);
  let r =
    Websql.Eval.run ~db
      {| SELECT d.url FROM ANYWHERE d WHERE d MENTIONS "host" AND NOT d.url = "u:q0" |}
  in
  (* "host" appears in q0's title only, and q0 is excluded *)
  check_int "mentions + negation" 0 (Relation.cardinality r)

let cyclic_termination () =
  (* p0 -> p1 -> p0 is a local cycle; the star must terminate *)
  let r =
    Websql.Eval.run ~db:(tiny_web ())
      {| SELECT d.url FROM DOCUMENT d SUCH THAT "u:p0" (->)+ d |}
  in
  check "plus over a cycle" true
    (List.sort compare (texts_of r 0) = [ Label.str "u:p0"; Label.str "u:p1" ])

let against_generator () =
  (* on generated web graphs, (->|=>)* from any page equals link-closure *)
  let db = Ssd_workload.Webgraph.generate ~seed:21 ~n_pages:60 ~n_hosts:4 () in
  let w = Websql.Web.of_graph db in
  let some_page = List.hd (Websql.Web.documents w) in
  let via_websql =
    Websql.Eval.reachable w ~start:some_page Websql.Ast.(Star (Atom Any))
  in
  (* closure over link edges, computed directly *)
  let seen = Hashtbl.create 64 in
  let rec go p =
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.add seen p ();
      List.iter (fun (_, q) -> go q) (Websql.Web.links w p)
    end
  in
  go some_page;
  check "star = closure" true
    (List.sort compare via_websql
    = List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) seen []))

let parse_errors () =
  List.iter
    (fun src ->
      check (Printf.sprintf "reject %s" src) true
        (match Websql.Parser.parse src with
         | exception Websql.Parser.Parse_error _ -> true
         | _ -> false))
    [
      "";
      "SELECT d.url";
      "SELECT d.url FROM DOCUMENT d";
      {| SELECT d.url FROM DOCUMENT d SUCH THAT "u" -> e |};
      (* wrong trailing var *)
      {| SELECT d.url FROM DOCUMENT d SUCH THAT "u" -> d WHERE |};
    ]

let missing_url_is_empty () =
  let r =
    Websql.Eval.run ~db:(tiny_web ())
      {| SELECT d.url FROM DOCUMENT d SUCH THAT "no-such-url" ->* d |}
  in
  check_int "unknown start" 0 (Relation.cardinality r)

let tests =
  [
    Alcotest.test_case "local navigation" `Quick local_navigation;
    Alcotest.test_case "global navigation" `Quick global_navigation;
    Alcotest.test_case "mixed navigation" `Quick mixed_navigation;
    Alcotest.test_case "chained docspecs" `Quick chained_docspecs;
    Alcotest.test_case "where conditions" `Quick where_conditions;
    Alcotest.test_case "cyclic termination" `Quick cyclic_termination;
    Alcotest.test_case "against the generator" `Quick against_generator;
    Alcotest.test_case "parse errors" `Quick parse_errors;
    Alcotest.test_case "missing url is empty" `Quick missing_url_is_empty;
  ]
