module Label = Ssd.Label
module Tree = Ssd.Tree
module Graph = Ssd.Graph
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sym = Label.sym

let constructors_denote_trees () =
  check "empty" true (Tree.is_empty (Graph.to_tree Graph.empty));
  check "leaf" true (Tree.equal (Graph.to_tree (Graph.leaf (sym "a"))) (Tree.leaf (sym "a")));
  let g = Graph.edge (sym "a") (Graph.leaf (sym "b")) in
  check "edge" true (Tree.equal (Graph.to_tree g) (Ssd.Syntax.parse_tree "{a: {b}}"))

let cycles () =
  let g = Ssd.Syntax.parse_graph "&r {a: *r}" in
  check "cyclic" false (Graph.is_acyclic g);
  check "to_tree raises" true
    (match Graph.to_tree g with
     | exception Graph.Cyclic -> true
     | _ -> false);
  (* unfold cuts at depth *)
  check "unfold 2" true
    (Tree.equal (Graph.unfold ~depth:2 g) (Ssd.Syntax.parse_tree "{a: {a}}"))

let eps_semantics () =
  (* union root has ε-edges; labeled_succ reads through them *)
  let g = Graph.union (Graph.leaf (sym "a")) (Graph.leaf (sym "b")) in
  check_int "two labeled successors" 2 (List.length (Graph.labeled_succ g (Graph.root g)));
  let g' = Graph.eps_eliminate g in
  check_int "no eps after elimination"
    (Graph.n_edges g')
    (List.length
       (Graph.fold_labeled_edges (fun acc _ _ v -> v :: acc) [] g'))

let gc_drops_garbage () =
  let b = Graph.Builder.create () in
  let r = Graph.Builder.add_node b in
  let live = Graph.Builder.add_node b in
  let _dead = Graph.Builder.add_node b in
  Graph.Builder.add_edge b r (sym "a") live;
  Graph.Builder.set_root b r;
  let g = Graph.gc (Graph.Builder.finish b) in
  check_int "dead node collected" 2 (Graph.n_nodes g)

let import_into () =
  let inner = Ssd.Syntax.parse_graph "{x: {y}}" in
  let b = Graph.Builder.create () in
  let r = Graph.Builder.add_node b in
  Graph.Builder.set_root b r;
  let ir = Graph.import_into b inner in
  Graph.Builder.add_edge b r (sym "wrap") ir;
  let g = Graph.Builder.finish b in
  check "imported subgraph intact" true
    (Tree.equal (Graph.to_tree g) (Ssd.Syntax.parse_tree "{wrap: {x: {y}}}"))

let sharing_unfolds () =
  (* A DAG node referenced twice unfolds into two copies. *)
  let g = Ssd.Syntax.parse_graph "{l: &s {v}, r: *s}" in
  check "tree duplicates shared node" true
    (Tree.equal (Graph.to_tree g) (Ssd.Syntax.parse_tree "{l: {v}, r: {v}}"))

let pp_cyclic_roundtrip () =
  List.iter
    (fun src ->
      let g = Ssd.Syntax.parse_graph src in
      let g2 = Ssd.Syntax.parse_graph (Graph.to_string g) in
      check (Printf.sprintf "roundtrip %s" src) true (Ssd.Bisim.equal g g2))
    [
      "&r {a: *r}";
      "&r {a: {b: *r}, c: {}}";
      "{x: &s {v}, y: *s}";
      "&a {go: &b {back: *a, fwd: *b}}";
    ]

let properties =
  [
    qtest "of_tree/to_tree round-trip" tree (fun t ->
        Tree.equal t (Graph.to_tree (Graph.of_tree t)));
    qtest "union denotes tree union" (Q.pair tree tree) (fun (t1, t2) ->
        Tree.equal
          (Graph.to_tree (Graph.union (Graph.of_tree t1) (Graph.of_tree t2)))
          (Tree.union t1 t2));
    qtest "eps_eliminate preserves the value" graph (fun g ->
        Ssd.Bisim.equal g (Graph.eps_eliminate g));
    qtest "gc preserves the value" graph (fun g -> Ssd.Bisim.equal g (Graph.gc g));
    qtest "map_labels id preserves the value" graph (fun g ->
        Ssd.Bisim.equal g (Graph.map_labels Fun.id g));
    qtest "reachable covers all gc'd nodes" graph (fun g ->
        let g = Graph.gc g in
        Array.for_all Fun.id (Graph.reachable g));
    qtest "to_tree of DAG equals deep unfold" dag (fun g ->
        let t = Graph.to_tree g in
        Tree.equal t (Graph.unfold ~depth:(Tree.depth t + 1) g));
    qtest "pp/parse round-trip up to bisimilarity" graph (fun g ->
        Ssd.Bisim.equal g (Ssd.Syntax.parse_graph (Graph.to_string g)));
    qtest "root out-degree bounds the tree's" dag (fun g ->
        (* labeled_succ may repeat (label, bisimilar target); the canonical
           tree absorbs those, never the reverse *)
        Tree.out_degree (Graph.to_tree g)
        <= List.length (Graph.labeled_succ g (Graph.root g)));
  ]

let tests =
  [
    Alcotest.test_case "constructors denote trees" `Quick constructors_denote_trees;
    Alcotest.test_case "cycles" `Quick cycles;
    Alcotest.test_case "eps semantics" `Quick eps_semantics;
    Alcotest.test_case "gc drops garbage" `Quick gc_drops_garbage;
    Alcotest.test_case "import_into" `Quick import_into;
    Alcotest.test_case "sharing unfolds" `Quick sharing_unfolds;
    Alcotest.test_case "cyclic print/parse round-trips" `Quick pp_cyclic_roundtrip;
  ]
  @ properties
