module Json = Ssd.Json
module Label = Ssd.Label
module Tree = Ssd.Tree
open Gen

let check = Alcotest.(check bool)

let parse_basics () =
  check "null" true (Json.parse "null" = Json.Null);
  check "int" true (Json.parse "42" = Json.Int 42);
  check "float" true (Json.parse "-1.5e2" = Json.Float (-150.));
  check "string" true (Json.parse {| "hi" |} = Json.String "hi");
  check "array" true (Json.parse "[1, 2]" = Json.List [ Json.Int 1; Json.Int 2 ]);
  check "object" true
    (Json.parse {| {"a": 1, "b": [true, null]} |}
    = Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ]);
  check "nested empties" true (Json.parse "[[], {}]" = Json.List [ Json.List []; Json.Obj [] ])

let parse_errors () =
  List.iter
    (fun src ->
      check (Printf.sprintf "reject %s" src) true
        (match Json.parse src with
         | exception Json.Parse_error _ -> true
         | _ -> false))
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"open"; "1 2" ]

let arrays_become_integer_edges () =
  (* "arrays may be represented by labeling internal edges with integers" *)
  let t = Json.to_tree (Json.parse {| ["x", "y"] |}) in
  check "edge 0" true
    (Tree.subtrees_with_label t (Label.int 0) = [ Tree.leaf (Label.str "x") ]);
  check "edge 1" true
    (Tree.subtrees_with_label t (Label.int 1) = [ Tree.leaf (Label.str "y") ])

let object_keys_become_symbols () =
  let t = Json.to_tree (Json.parse {| {"movie": {"title": "Casablanca"}} |}) in
  check "path" true
    (Tree.equal t (Ssd.Syntax.parse_tree {| {movie: {title: {"Casablanca"}}} |}))

let of_tree_heuristics () =
  (* a tree with contiguous int labels decodes as an array *)
  check "array back" true
    (Json.of_tree (Json.to_tree (Json.parse "[1, 2, 3]")) = Json.parse "[1, 2, 3]");
  (* duplicate labels are legal trees; JSON keeps the first *)
  let t = Ssd.Syntax.parse_tree {| {k: {1}, k: {2}} |} in
  check "duplicate keys collapse" true
    (match Json.of_tree t with Json.Obj [ ("k", _) ] -> true | _ -> false)

(* The encoding is not injective on empty containers ([] and {} both
   denote the empty tree — the paper's point: the model subsumes the
   format) and forgets object key order (edges are a set).  Properties
   hold up to that normalization. *)
let rec norm = function
  | Json.List [] -> Json.Obj []
  | Json.List [ x ] when norm x = Json.Obj [] ->
    (* {0: {}} is also the encoding of the scalar 0 *)
    Json.Int 0
  | Json.List items -> Json.List (List.map norm items)
  | Json.Obj kvs ->
    (* the tree is a set of edges: object key order is not represented *)
    Json.Obj
      (List.sort
         (fun (k1, _) (k2, _) -> String.compare k1 k2)
         (List.map (fun (k, v) -> (k, norm v)) kvs))
  | j -> j

let properties =
  [
    qtest "print/parse round-trip" json (fun j -> Json.parse (Json.to_string j) = j);
    qtest "of_tree (to_tree j) = j up to empty containers" ~print:Json.to_string json (fun j ->
        Json.of_tree (Json.to_tree j) = norm j);
    qtest "to_tree injective up to empty containers" (Q.pair json json) (fun (a, b) ->
        norm a = norm b || not (Tree.equal (Json.to_tree a) (Json.to_tree b)));
  ]

let tests =
  [
    Alcotest.test_case "parse basics" `Quick parse_basics;
    Alcotest.test_case "parse errors" `Quick parse_errors;
    Alcotest.test_case "arrays become integer edges" `Quick arrays_become_integer_edges;
    Alcotest.test_case "object keys become symbols" `Quick object_keys_become_symbols;
    Alcotest.test_case "of_tree heuristics" `Quick of_tree_heuristics;
  ]
  @ properties
