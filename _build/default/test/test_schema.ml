module Label = Ssd.Label
module Graph = Ssd.Graph
module Gschema = Ssd_schema.Gschema
module Dataguide = Ssd_schema.Dataguide
module Ro = Ssd_schema.Ro
module Infer = Ssd_schema.Infer
module Lpred = Ssd_automata.Lpred
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Graph schemas                                                       *)
(* ------------------------------------------------------------------ *)

let parse_and_conform () =
  let schema = Gschema.parse "{entry: {movie | tvshow: {title: #string, cast: _}}}" in
  let data = Ssd.Syntax.parse_graph {| {entry: {movie: {title: "Casablanca", cast: {}}}} |} in
  check "conforms" true (Gschema.conforms data schema);
  let bad = Ssd.Syntax.parse_graph {| {entry: {movie: {title: 1942}}} |} in
  check "int title rejected" false (Gschema.conforms bad schema)

let loose_constraints () =
  (* Simulation: fewer edges than the schema allows is fine. *)
  let schema = Gschema.parse "{a: {x, y, z}}" in
  check "partial data conforms" true
    (Gschema.conforms (Ssd.Syntax.parse_graph "{a: {x}}") schema);
  check "empty data conforms" true
    (Gschema.conforms (Ssd.Syntax.parse_graph "{}") schema);
  (* ...but unexpected edges are not *)
  check "extra edge rejected" false
    (Gschema.conforms (Ssd.Syntax.parse_graph "{a: {w}}") schema)

let cyclic_schema () =
  (* Arbitrary-depth data (ACeDB style) needs a cyclic schema. *)
  let schema = Gschema.parse "&t {taxon: *t, child: *t, name: #string}" in
  let deep = Ssd_workload.Biodb.generate ~n_taxa:50 () in
  (* biodb has more fields; use a covering schema *)
  ignore deep;
  let data = Ssd.Syntax.parse_graph {| {taxon: {name: "a", child: {name: "b", child: {name: "c"}}}} |} in
  check "deep data conforms to cyclic schema" true (Gschema.conforms data schema)

let violations_located () =
  let schema = Gschema.parse "{a: {#int}}" in
  let data = Ssd.Syntax.parse_graph {| {a: {"oops"}} |} in
  check "nonconforming" false (Gschema.conforms data schema);
  check "violations nonempty" true (Gschema.violations data schema <> [])

let schema_printing () =
  let schema = Gschema.parse "{entry: {movie: {title: #string}, tvshow: _}}" in
  let printed = Gschema.to_string schema in
  (* reparse and check the same data conforms *)
  let schema2 = Gschema.parse printed in
  let data = Ssd.Syntax.parse_graph {| {entry: {movie: {title: "x"}}} |} in
  check "pp/parse keeps conformance" true
    (Gschema.conforms data schema = Gschema.conforms data schema2)

let schema_parse_errors () =
  List.iter
    (fun src ->
      check (Printf.sprintf "reject %s" src) true
        (match Gschema.parse src with
         | exception Gschema.Parse_error _ -> true
         | _ -> false))
    [ ""; "{a: }"; "*undefined"; "{a: b*}" ]

(* ------------------------------------------------------------------ *)
(* DataGuides                                                          *)
(* ------------------------------------------------------------------ *)

let guide_deterministic () =
  let g = Ssd_workload.Movies.generate ~n_entries:30 () in
  let guide = Dataguide.build g in
  let gg = Dataguide.graph guide in
  let ok = ref true in
  for u = 0 to Graph.n_nodes gg - 1 do
    let labels = List.map fst (Graph.labeled_succ gg u) in
    if List.length labels <> List.length (List.sort_uniq Label.compare labels) then
      ok := false
  done;
  check "no node has two equal outgoing labels" true !ok

let guide_on_cycles () =
  let g = Ssd.Syntax.parse_graph "&r {a: {b: *r}}" in
  let guide = Dataguide.build g in
  check "guide of cyclic data is finite" true (Dataguide.n_nodes guide <= 4);
  check "follows cyclic path" true (Dataguide.follow guide (List.map Label.sym [ "a"; "b"; "a"; "b" ]) <> None)

let all_paths_to ~len g =
  let rec walk u path n acc =
    if n >= len then path :: acc
    else
      match Graph.labeled_succ g u with
      | [] -> path :: acc
      | es -> path :: List.fold_left (fun acc (l, v) -> walk v (path @ [ l ]) (n + 1) acc) acc es
  in
  List.sort_uniq compare (walk (Graph.root g) [] 0 [])

let guide_properties =
  [
    qtest "guide accuracy: every data path is a guide path and conversely" ~count:60 graph
      (fun g ->
        let guide = Dataguide.build g in
        let data_paths = all_paths_to ~len:4 g in
        let guide_paths = List.sort_uniq compare (Dataguide.paths guide ~max_len:4) in
        List.for_all (fun p -> Dataguide.follow guide p <> None) data_paths
        && List.for_all
             (fun p -> Ssd_index.Path_index.traverse g p <> [])
             guide_paths);
    qtest "guide target sets = traversal answers" ~count:60 graph (fun g ->
        let guide = Dataguide.build g in
        List.for_all
          (fun p ->
            List.sort_uniq compare (Dataguide.find guide p)
            = List.sort compare (Ssd_index.Path_index.traverse g p))
          (all_paths_to ~len:3 g));
  ]

(* ------------------------------------------------------------------ *)
(* Representative objects and schema inference                         *)
(* ------------------------------------------------------------------ *)

let ro_k_dial () =
  let g = Ssd_workload.Movies.generate ~n_entries:40 () in
  let sizes = List.map (fun k -> Ro.n_classes (Ro.build ~k g)) [ 0; 1; 2; 8 ] in
  check "k=0 collapses everything" true (List.hd sizes = 1);
  check "classes grow with k" true
    (List.for_all2 ( <= ) sizes (List.tl sizes @ [ max_int ]))

let ro_properties =
  [
    qtest "every data path of length <= k survives in the k-RO" ~count:60
      (Q.pair graph (Q.int_range 0 3))
      (fun (g, k) ->
        let ro = Ro.build ~k g in
        List.for_all
          (fun p -> List.length p > k || Ro.has_path ro p)
          (all_paths_to ~len:k g));
    qtest "full-k RO is the bisimulation quotient" graph (fun g ->
        let ro = Ro.build ~k:1000 g in
        Ro.n_classes ro = Ssd.Bisim.n_classes g);
    qtest "RO quotient simulates the data" ~count:60 graph (fun g ->
        Ssd.Simulation.simulates g (Ro.graph (Ro.build ~k:3 g)));
  ]

let infer_properties =
  [
    qtest "data conforms to its inferred schema" ~count:40 graph (fun g ->
        Gschema.conforms g (Infer.infer ~k:3 g));
    qtest "schema size bounded by data size" graph (fun g ->
        Infer.schema_size ~k:4 g <= Graph.n_nodes (Graph.eps_eliminate g));
  ]

let infer_generalizes () =
  let g = Ssd_workload.Movies.generate ~n_entries:60 () in
  let schema = Infer.infer ~k:3 ~generalize_threshold:2 g in
  (* there must be an #string-typed edge somewhere (titles) *)
  let has_type_test = ref false in
  for u = 0 to Gschema.n_nodes schema - 1 do
    List.iter
      (fun (p, _) -> match p with Lpred.Of_type _ -> has_type_test := true | _ -> ())
      (Gschema.succ schema u)
  done;
  check "titles generalized to a type test" true !has_type_test;
  check "movies data conforms" true (Gschema.conforms g schema);
  (* the abstraction compresses: far fewer schema nodes than data nodes *)
  check "schema much smaller than data" true
    (Gschema.n_nodes schema * 3 < Graph.n_nodes (Graph.eps_eliminate g))

let tests =
  [
    Alcotest.test_case "parse and conform" `Quick parse_and_conform;
    Alcotest.test_case "loose constraints" `Quick loose_constraints;
    Alcotest.test_case "cyclic schema" `Quick cyclic_schema;
    Alcotest.test_case "violations located" `Quick violations_located;
    Alcotest.test_case "schema printing" `Quick schema_printing;
    Alcotest.test_case "schema parse errors" `Quick schema_parse_errors;
    Alcotest.test_case "guide deterministic" `Quick guide_deterministic;
    Alcotest.test_case "guide on cycles" `Quick guide_on_cycles;
    Alcotest.test_case "k-RO dial" `Quick ro_k_dial;
    Alcotest.test_case "inference generalizes values" `Quick infer_generalizes;
  ]
  @ guide_properties @ ro_properties @ infer_properties
