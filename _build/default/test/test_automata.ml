module Label = Ssd.Label
module Lpred = Ssd_automata.Lpred
module Regex = Ssd_automata.Regex
module Nfa = Ssd_automata.Nfa
module Dfa = Ssd_automata.Dfa
module Product = Ssd_automata.Product
module Graph = Ssd.Graph
open Gen

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Label predicates                                                    *)
(* ------------------------------------------------------------------ *)

let predicate_basics () =
  let m p l = Lpred.matches p l in
  check "any" true (m Lpred.Any (Label.int 1));
  check "exact" true (m (Lpred.Exact (Label.sym "movie")) (Label.sym "movie"));
  check "exact rejects" false (m (Lpred.Exact (Label.sym "movie")) (Label.str "movie"));
  check "of_type" true (m (Lpred.Of_type "int") (Label.int 5));
  check "startswith sym" true (m (Lpred.Starts_with "act") (Label.sym "actors"));
  check "startswith str" true (m (Lpred.Starts_with "Casa") (Label.str "Casablanca"));
  check "startswith rejects int" false (m (Lpred.Starts_with "1") (Label.int 12));
  check "contains" true (m (Lpred.Contains "sab") (Label.str "Casablanca"));
  check "not" true (m (Lpred.Not (Lpred.Exact (Label.sym "a"))) (Label.sym "b"));
  check "and" true
    (m (Lpred.And (Lpred.Of_type "int", Lpred.Gt (Label.int 10))) (Label.int 11));
  check "or" true
    (m (Lpred.Or (Lpred.Exact (Label.sym "a"), Lpred.Exact (Label.sym "b"))) (Label.sym "b"))

let numeric_comparisons () =
  let m p l = Lpred.matches p l in
  check "int > int" true (m (Lpred.Gt (Label.int 65536)) (Label.int 70000));
  check "int/float promote" true (m (Lpred.Gt (Label.int 1)) (Label.float 1.5));
  check "string order" true (m (Lpred.Lt (Label.str "b")) (Label.str "a"));
  (* no silly cross-type matches *)
  check "string vs int never orders" false (m (Lpred.Gt (Label.int 0)) (Label.str "zzz"))

(* ------------------------------------------------------------------ *)
(* Regexes                                                             *)
(* ------------------------------------------------------------------ *)

let word_of_syms s = List.map Label.sym s

let regex_matching () =
  let m src w = Regex.matches (Regex.parse src) (word_of_syms w) in
  check "literal path" true (m "entry.movie.title" [ "entry"; "movie"; "title" ]);
  check "wrong path" false (m "entry.movie.title" [ "entry"; "movie" ]);
  check "star empty" true (m "(link)*" []);
  check "star many" true (m "(link)*" [ "link"; "link"; "link" ]);
  check "plus not empty" false (m "(link)+" []);
  check "opt" true (m "a.(b)?.c" [ "a"; "c" ]);
  check "alt" true (m "(movie|tvshow).title" [ "tvshow"; "title" ]);
  check "negation" false (m "(~movie)*" [ "a"; "movie"; "b" ]);
  check "negation passes" true (m "(~movie)*" [ "a"; "b" ]);
  check "underscore" true (m "_._" [ "x"; "y" ]);
  check "conjunction of preds" true
    (m "(#symbol & startswith(\"act\"))" [ "actors" ])

let regex_parse_errors () =
  List.iter
    (fun src ->
      check (Printf.sprintf "reject %s" src) true
        (match Regex.parse src with
         | exception Regex.Parse_error _ -> true
         | _ -> false))
    [ ""; "("; "a |"; "a.."; "*"; "startswith(act)" ]

let alphabet_syms = List.map Label.sym [ "a"; "b"; "c"; "movie"; "title"; "x" ]

let minimize_all_accepting_regression () =
  (* Regression: an all-accepting DFA (e.g. of {eps, len-1, len-2 words})
     starts with a non-dense block labeling; the early version of
     minimize stopped refining one round early and merged the length
     counter, accepting words of every length. *)
  let r = Regex.parse "((((~_)*|_)._))?" in
  let dfa = Dfa.of_nfa ~alphabet:alphabet_syms (Nfa.of_regex r) in
  let mdfa = Dfa.minimize dfa in
  List.iter
    (fun w ->
      check
        (Printf.sprintf "same verdict on %d-letter word" (List.length w))
        true
        (Dfa.matches mdfa w = Dfa.matches dfa w))
    [ []; [ Label.sym "a" ]; List.init 2 (fun _ -> Label.sym "a");
      List.init 3 (fun _ -> Label.sym "a") ]

let nullable_and_deriv () =
  let r = Regex.parse "a.(b)*" in
  check "not nullable" false (Regex.nullable r);
  let r' = Regex.deriv r (Label.sym "a") in
  check "deriv nullable" true (Regex.nullable r');
  check "deriv b stays" true (Regex.nullable (Regex.deriv r' (Label.sym "b")));
  check "deriv dead" false (Regex.nullable (Regex.deriv r' (Label.sym "c")))

(* ------------------------------------------------------------------ *)
(* NFA / DFA                                                           *)
(* ------------------------------------------------------------------ *)

let automata_properties =
  [
    qtest "NFA agrees with regex derivatives" ~count:200
      (Q.pair regex word)
      (fun (r, w) -> Nfa.matches (Nfa.of_regex r) w = Regex.matches r w);
    qtest "DFA agrees with NFA over the alphabet" ~count:200
      (Q.pair regex word)
      (fun (r, w) ->
        let nfa = Nfa.of_regex r in
        let dfa = Dfa.of_nfa ~alphabet:alphabet_syms nfa in
        Dfa.matches dfa w = Nfa.matches nfa w);
    qtest "minimization preserves the language" ~count:200
      (Q.pair regex word)
      (fun (r, w) ->
        let dfa = Dfa.of_nfa ~alphabet:alphabet_syms (Nfa.of_regex r) in
        Dfa.matches (Dfa.minimize dfa) w = Dfa.matches dfa w);
    qtest "minimization never grows" regex (fun r ->
        let dfa = Dfa.of_nfa ~alphabet:alphabet_syms (Nfa.of_regex r) in
        Dfa.n_states (Dfa.minimize dfa) <= Dfa.n_states dfa);
    qtest "closures match eps_closure" regex (fun r ->
        let nfa = Nfa.of_regex r in
        let closures = Nfa.closures nfa in
        let ok = ref true in
        for q = 0 to nfa.Nfa.n - 1 do
          if closures.(q) <> Nfa.eps_closure nfa [ q ] then ok := false
        done;
        !ok);
    qtest "pp/parse preserves the language" ~count:200 ~print:(fun (r, _) -> Ssd_automata.Regex.to_string r) (Q.pair regex word) (fun (r, w) ->
        match Regex.parse (Regex.to_string r) with
        | r' -> Regex.matches r' w = Regex.matches r w
        | exception Regex.Parse_error _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Product: regular path queries on graphs                             *)
(* ------------------------------------------------------------------ *)

let product_on_figure1 () =
  let db = Ssd_workload.Movies.figure1 () in
  let hits = Product.accepting_nodes db (Nfa.of_string {| _* . "Casablanca" |}) in
  Alcotest.(check int) "Casablanca reached at 2 nodes" 2 (List.length hits);
  let witness = Product.witness db (Nfa.of_string {| _* . "Casablanca" |}) (List.hd hits) in
  check "witness exists" true (witness <> None);
  (* witness path must end with the Casablanca label *)
  (match witness with
   | Some path ->
     check "witness ends at needle" true
       (List.nth path (List.length path - 1) = Label.str "Casablanca")
   | None -> ())

let product_terminates_on_cycles () =
  let g = Ssd.Syntax.parse_graph "&r {a: *r}" in
  let hits = Product.accepting_nodes g (Nfa.of_string "(a)*") in
  Alcotest.(check int) "one node, always accepting" 1 (List.length hits)

let product_properties =
  [
    qtest "product = derivative search on graphs" ~count:100
      (Q.pair graph regex)
      (fun (g, r) ->
        Product.accepting_nodes g (Nfa.of_regex r) = Product.accepting_nodes_deriv g r);
    qtest "product = DFA product on graphs" ~count:100
      (Q.pair graph regex)
      (fun (g, r) ->
        let nfa = Nfa.of_regex r in
        let dfa = Dfa.of_nfa ~alphabet:(Product.alphabet g) nfa in
        Product.accepting_nodes g nfa = Product.accepting_nodes_dfa g dfa);
    qtest "witness path is accepted and reaches its node" ~count:60
      (Q.pair graph regex)
      (fun (g, r) ->
        let nfa = Nfa.of_regex r in
        List.for_all
          (fun node ->
            match Product.witness g nfa node with
            | None -> false
            | Some path ->
              Regex.matches r path
              && List.mem node (Ssd_index.Path_index.traverse g path))
          (Product.accepting_nodes g nfa));
    qtest "accepting nodes from root subset of reachable" (Q.pair graph regex)
      (fun (g, r) ->
        let reach = Graph.reachable g in
        List.for_all (fun u -> reach.(u)) (Product.accepting_nodes g (Nfa.of_regex r)));
  ]

let tests =
  [
    Alcotest.test_case "predicate basics" `Quick predicate_basics;
    Alcotest.test_case "numeric comparisons" `Quick numeric_comparisons;
    Alcotest.test_case "regex matching" `Quick regex_matching;
    Alcotest.test_case "regex parse errors" `Quick regex_parse_errors;
    Alcotest.test_case "minimize regression: all-accepting DFA" `Quick
      minimize_all_accepting_regression;
    Alcotest.test_case "nullable and derivatives" `Quick nullable_and_deriv;
    Alcotest.test_case "product on figure 1" `Quick product_on_figure1;
    Alcotest.test_case "product terminates on cycles" `Quick product_terminates_on_cycles;
  ]
  @ automata_properties @ product_properties
