module Label = Ssd.Label
module Tree = Ssd.Tree
module Graph = Ssd.Graph
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig1 = Ssd_workload.Movies.figure1 ()

let run ?(db = fig1) src = Lorel.Eval.run ~db src
let rows g = Graph.labeled_succ g (Graph.root g)

let path_evaluation () =
  let eval src = Lorel.Eval.eval_path ~db:fig1 ~env:[] (Lorel.Parser.parse_path src) in
  check_int "two movies" 2 (List.length (eval "DB.entry.movie"));
  check_int "wildcard % spans one edge" 3 (List.length (eval "DB.entry.%"));
  (* '#' spans any path: every node reachable from the root *)
  check_int "hash reaches everything" (Graph.n_nodes (Graph.eps_eliminate fig1))
    (List.length (eval "DB.#"))

let select_from_where () =
  let r = run {| select X.title from DB.entry.movie X where X.director = "Allen" |} in
  check_int "one row" 1 (List.length (rows r));
  check "the right title" true
    (Tree.mem_label (Graph.to_tree r) (Label.str "Play it again, Sam"))

let coercion () =
  (* string/number coercion: budget is the float 1.2e6 *)
  let r = run {| select X.title from DB.entry.movie X where X.budget = "1200000" |} in
  check_int "string coerced to number" 1 (List.length (rows r));
  (* numeric comparison across int/float *)
  let r = run {| select X.title from DB.entry.movie X where X.budget > 1000000 |} in
  check_int "int bound vs float value" 1 (List.length (rows r))

let like_operator () =
  let r = run {| select X.title from DB.entry.% X where X.title like "again" |} in
  check_int "like matches substring" 1 (List.length (rows r))

let exists_and_negation () =
  let r = run {| select X.title from DB.entry.% X where exists X.episode |} in
  check_int "only the tv show has episodes" 1 (List.length (rows r));
  let r = run {| select X.title from DB.entry.% X where not exists X.episode |} in
  check_int "both movies lack episodes" 2 (List.length (rows r))

let hash_wildcard_queries () =
  (* find the movies where Bogart appears anywhere below cast, whatever
     the cast encoding (the figure's irregularity) *)
  let r = run {| select X.title from DB.entry.% X where X.cast.# = "Bogart" |} in
  check_int "Bogart in two entries" 2 (List.length (rows r))

let aliases_and_multi_items () =
  let r =
    run {| select X.title as t, X.director as d from DB.entry.movie X |}
  in
  let tree = Graph.to_tree r in
  check_int "two rows" 2 (List.length (rows r));
  check "alias labels used" true
    (Tree.mem_label tree (Label.sym "t") && Tree.mem_label tree (Label.sym "d"))

let multiple_range_vars () =
  let r =
    run
      {| select A from DB.entry.movie X, X.cast.#.% A
         where X.title = "Casablanca" |}
  in
  (* leaves under actors: Bogart/Bacall leaf objects *)
  check "rows present" true (rows r <> [])

let object_identity_preserved () =
  (* two select items reaching the same object share the node *)
  let r =
    run {| select X.references, X.references from DB.entry.movie X where exists X.references |}
  in
  let row =
    match rows r with
    | [ (_, row) ] -> row
    | _ -> Alcotest.fail "expected one row"
  in
  (match Graph.labeled_succ r row with
   | [ (_, n1); (_, n2) ] -> check "same object node" true (n1 = n2)
   | _ -> Alcotest.fail "expected two items")

let parse_errors () =
  List.iter
    (fun src ->
      check (Printf.sprintf "reject %s" src) true
        (match Lorel.Parser.parse src with
         | exception Lorel.Parser.Parse_error _ -> true
         | _ -> false))
    [
      "";
      "from DB.x X";
      "select";
      "select X.y from DB.a select";
      "select X.y from DB.a and";
      "select X.title from DB.entry.movie X where";
    ]

let unbound_variable () =
  check "unbound range var" true
    (match run "select Y.title from DB.entry.movie X" with
     | exception Lorel.Eval.Runtime_error _ -> true
     | _ -> false)

let properties =
  [
    qtest "DB.# = reachable nodes" graph (fun g ->
        let nodes =
          Lorel.Eval.eval_path ~db:g ~env:[] (Lorel.Parser.parse_path "DB.#")
        in
        List.length nodes = Graph.n_nodes (Graph.eps_eliminate g));
    qtest "% step = labeled successors" graph (fun g ->
        let via_lorel =
          Lorel.Eval.eval_path ~db:g ~env:[] (Lorel.Parser.parse_path "DB.%")
        in
        let direct =
          Graph.labeled_succ g (Graph.root g) |> List.map snd |> List.sort_uniq compare
        in
        List.sort compare via_lorel = direct);
    qtest "lorel exact path = unql literal path" ~count:50 graph (fun g ->
        let lorel_nodes =
          Lorel.Eval.eval_path ~db:g ~env:[] (Lorel.Parser.parse_path "DB.a.b")
        in
        let direct = Ssd_index.Path_index.traverse g [ Label.sym "a"; Label.sym "b" ] in
        List.sort compare lorel_nodes = List.sort compare direct);
  ]

let tests =
  [
    Alcotest.test_case "path evaluation" `Quick path_evaluation;
    Alcotest.test_case "select from where" `Quick select_from_where;
    Alcotest.test_case "coercion" `Quick coercion;
    Alcotest.test_case "like operator" `Quick like_operator;
    Alcotest.test_case "exists and negation" `Quick exists_and_negation;
    Alcotest.test_case "hash wildcard queries" `Quick hash_wildcard_queries;
    Alcotest.test_case "aliases and multiple items" `Quick aliases_and_multi_items;
    Alcotest.test_case "multiple range variables" `Quick multiple_range_vars;
    Alcotest.test_case "object identity preserved" `Quick object_identity_preserved;
    Alcotest.test_case "parse errors" `Quick parse_errors;
    Alcotest.test_case "unbound variable" `Quick unbound_variable;
  ]
  @ properties
