(* The UnCAL marker algebra and its laws (the calculus under UnQL). *)

module U = Unql.Uncal
module Graph = Ssd.Graph
module Label = Ssd.Label
module Tree = Ssd.Tree
open Gen

let check = Alcotest.(check bool)

let sym = Label.sym

(* A generator of small marker graphs over holes {y, z}. *)
let uncal : U.t Q.t =
  let open Q in
  sized_size (int_range 0 6)
  @@ fix (fun self n ->
         if n <= 0 then
           oneofl [ U.empty; U.mark "y"; U.mark "z"; U.label (sym "a") U.empty ]
         else
           oneof
             [
               oneofl [ U.empty; U.mark "y"; U.mark "z" ];
               Q.map2 (fun l t -> U.label l t) label (self (n / 2));
               Q.map2 U.union (self (n / 2)) (self (n / 2));
             ])

(* Close all holes with inputs for the right operand of @. *)
let closed_over names t =
  List.fold_left
    (fun t y ->
      if List.mem y (U.inputs t) then t
      else
        (* add input y as an alias of & by renaming a copy *)
        t)
    t names

let value t = U.to_graph t

let simple_construction () =
  let g = value (U.label (sym "a") (U.union (U.label (sym "b") U.empty) (U.label (sym "c") U.empty))) in
  check "constructors build trees" true
    (Tree.equal (Graph.to_tree g) (Ssd.Syntax.parse_tree "{a: {b, c}}"))

let hole_closes_to_empty () =
  let g = value (U.label (sym "a") (U.mark "y")) in
  check "unmatched hole is {}" true
    (Tree.equal (Graph.to_tree g) (Ssd.Syntax.parse_tree "{a: {}}"))

let append_plugs_holes () =
  (* {a: &y} @ (&y = {b}) = {a: {b}} *)
  let t1 = U.label (sym "a") (U.mark "y") in
  let t2 = U.rename_inputs (fun _ -> "y") (U.label (sym "b") U.empty) in
  let g = value (U.append t1 t2) in
  check "append substitutes" true
    (Tree.equal (Graph.to_tree g) (Ssd.Syntax.parse_tree "{a: {b}}"))

let cycle_builds_loops () =
  (* cycle(& = {a: &&}) — hole named like the input — is the a-loop *)
  let t = U.label (sym "a") (U.mark U.amp) in
  let g = value (U.cycle t) in
  check "cycle closes the loop" true
    (Ssd.Bisim.equal g (Ssd.Syntax.parse_graph "&r {a: *r}"))

let structural_recursion_by_hand () =
  (* The tutorial's point: rec is definable from the algebra.  Unroll a
     two-state traffic light by cycling mutually-referent components:
     building (&: {green: &y}) @ (y: {red: &}) then cycling. *)
  let g1 = U.label (sym "green") (U.mark "y") in
  let g2 = U.rename_inputs (fun _ -> "y") (U.label (sym "red") (U.mark U.amp)) in
  let wired = U.append g1 g2 in
  (* wired: & -> green -> red -> hole & *)
  let light = U.cycle wired in
  check "green/red cycle" true
    (Ssd.Bisim.equal (value light) (Ssd.Syntax.parse_graph "&r {green: {red: *r}}"))

let laws =
  [
    qtest "append associative" ~count:60 (Q.triple uncal uncal uncal) (fun (a, b, c) ->
        (* wire b and c under fresh inputs matching the holes they plug *)
        let b = U.rename_inputs (fun _ -> "y") b in
        let c = U.rename_inputs (fun _ -> "z") c in
        U.equal (U.append (U.append a b) c) (U.append a (U.append b c)));
    qtest "mark is a left unit" ~count:60 uncal (fun t ->
        let t = U.rename_inputs (fun _ -> "y") t in
        Ssd.Bisim.equal
          (U.to_graph ~input:U.amp (U.append (U.mark "y") t))
          (U.to_graph ~input:"y" t));
    qtest "append distributes over union on the left" ~count:60
      (Q.triple uncal uncal uncal)
      (fun (a, b, c) ->
        let c = U.rename_inputs (fun _ -> "y") c in
        U.equal (U.append (U.union a b) c) (U.union (U.append a c) (U.append b c)));
    qtest "cycle unrolls: cycle t = t @ cycle t" ~count:60 uncal (fun t ->
        (* make the holes refer to the input so cycle has something to do *)
        let t = U.rename_outputs (fun _ -> U.amp) t in
        Ssd.Bisim.equal (value (U.cycle t)) (value (U.append t (U.cycle t))));
    qtest "union laws lift from trees" ~count:60 (Q.pair uncal uncal) (fun (a, b) ->
        Ssd.Bisim.equal (value (U.union a b)) (value (U.union b a))
        && Ssd.Bisim.equal (value (U.union a a)) (value a));
    qtest "empty is the unit of union" uncal (fun t ->
        Ssd.Bisim.equal (value (U.union t U.empty)) (value t));
    qtest "append with no holes is a no-op" ~count:60 (Q.pair graph uncal) (fun (g, t) ->
        let t = U.rename_inputs (fun _ -> "y") t in
        Ssd.Bisim.equal (value (U.append (U.inject g) t)) g);
  ]

let tests =
  [
    Alcotest.test_case "simple construction" `Quick simple_construction;
    Alcotest.test_case "hole closes to empty" `Quick hole_closes_to_empty;
    Alcotest.test_case "append plugs holes" `Quick append_plugs_holes;
    Alcotest.test_case "cycle builds loops" `Quick cycle_builds_loops;
    Alcotest.test_case "structural recursion by hand" `Quick structural_recursion_by_hand;
  ]
  @ laws

let _ = closed_over
