module Label = Ssd.Label
open Gen

let check = Alcotest.(check bool)

let constructors () =
  check "int" true (Label.is_int (Label.int 3));
  check "float" true (Label.is_float (Label.float 1.5));
  check "str" true (Label.is_str (Label.str "x"));
  check "bool" true (Label.is_bool (Label.bool true));
  check "sym" true (Label.is_sym (Label.sym "movie"));
  Alcotest.(check string) "type names" "int,float,string,bool,symbol"
    (String.concat ","
       (List.map Label.type_name
          [ Label.int 0; Label.float 0.; Label.str ""; Label.bool false; Label.sym "s" ]))

let string_and_symbol_distinct () =
  check "Str <> Sym" false (Label.equal (Label.str "movie") (Label.sym "movie"));
  check "parse keeps them distinct" true
    (Label.equal (Label.of_string "\"movie\"") (Label.str "movie")
    && Label.equal (Label.of_string "movie") (Label.sym "movie"))

let parsing () =
  let cases =
    [
      ("42", Label.int 42);
      ("-7", Label.int (-7));
      ("1.5", Label.float 1.5);
      ("true", Label.bool true);
      ("false", Label.bool false);
      ("movie", Label.sym "movie");
      ("\"with \\\"quotes\\\"\"", Label.str "with \"quotes\"");
      ("\"line\\nbreak\"", Label.str "line\nbreak");
    ]
  in
  List.iter
    (fun (s, expected) ->
      check (Printf.sprintf "parse %s" s) true (Label.equal (Label.of_string s) expected))
    cases

let parse_failures () =
  List.iter
    (fun s ->
      check (Printf.sprintf "reject %S" s) true
        (match Label.of_string s with
         | exception Failure _ -> true
         | _ -> false))
    [ ""; "\"unterminated"; "9abc"; "has space" ]

let properties =
  [
    qtest "to_string/of_string round-trip" label (fun l ->
        Label.equal l (Label.of_string (Label.to_string l)));
    qtest "compare reflexive" label (fun l -> Label.compare l l = 0);
    qtest "compare antisymmetric" (Q.pair label label) (fun (a, b) ->
        Stdlib.compare (Label.compare a b > 0) (Label.compare b a < 0) = 0);
    qtest "compare transitive"
      (Q.triple label label label)
      (fun (a, b, c) ->
        (not (Label.compare a b <= 0 && Label.compare b c <= 0)) || Label.compare a c <= 0);
    qtest "equal implies same hash" (Q.pair label label) (fun (a, b) ->
        (not (Label.equal a b)) || Label.hash a = Label.hash b);
    qtest "exactly one type test holds" label (fun l ->
        let tests = [ Label.is_int l; Label.is_float l; Label.is_str l; Label.is_bool l; Label.is_sym l ] in
        List.length (List.filter Fun.id tests) = 1);
  ]

let tests =
  [
    Alcotest.test_case "constructors and type tests" `Quick constructors;
    Alcotest.test_case "string vs symbol" `Quick string_and_symbol_distinct;
    Alcotest.test_case "literal parsing" `Quick parsing;
    Alcotest.test_case "parse failures" `Quick parse_failures;
  ]
  @ properties
