module Oem = Ssd.Oem
module Graph = Ssd.Graph
module Tree = Ssd.Tree
module Label = Ssd.Label
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample =
  {| <entry, set, {
       &m1 <movie, set, {
         <title, str, "Casablanca">,
         <year, int, 1942>,
         <classic, bool, true>,
         <rating, real, 4.5> }>,
       <movie, set, {
         <title, str, "Play it again, Sam">,
         <references, set, { &m1 }> }> }> |}

let parse_sample () =
  let o = Oem.parse sample in
  check "top label" true (o.Oem.label = "entry");
  match o.Oem.value with
  | Oem.Objects [ Oem.Obj m1; Oem.Obj m2 ] ->
    check "oid bound" true (m1.Oem.oid = Some "m1");
    check "no oid" true (m2.Oem.oid = None)
  | _ -> Alcotest.fail "expected two movie members"

let to_graph_semantics () =
  let g = Oem.to_graph (Oem.parse sample) in
  let t = Graph.to_tree g in
  (* atomic values become leaf edges below the labeled edge *)
  (* two occurrences: the direct title path and the one through the
     spliced &m1 reference *)
  check "title value" true
    (List.mem
       (List.map Label.of_string [ "entry"; "movie"; "title"; "\"Casablanca\"" ])
       (Tree.find_paths_to t (Label.equal (Label.str "Casablanca"))));
  check "int atom" true (Tree.mem_label t (Label.int 1942));
  check "bool atom" true (Tree.mem_label t (Label.bool true));
  check "real atom" true (Tree.mem_label t (Label.float 4.5));
  (* the &m1 reference splices: Sam's references edge reaches the title *)
  let nfa = Ssd_automata.Nfa.of_string {| entry.movie.references.title."Casablanca" |} in
  check_int "reference reaches the shared movie" 1
    (List.length (Ssd_automata.Product.accepting_nodes g nfa))

let reference_is_shared_not_copied () =
  let g = Oem.to_graph (Oem.parse sample) in
  (* m1 is stored once: with the reference spliced, graph edges < tree edges *)
  check "sharing" true (Graph.n_edges g < Tree.size (Graph.to_tree g))

let cyclic_oem () =
  let g =
    Oem.to_graph
      (Oem.parse {| &a <x, set, { <next, set, { &a }> }> |})
  in
  check "cycle preserved" false (Graph.is_acyclic g)

let parse_errors () =
  List.iter
    (fun src ->
      check (Printf.sprintf "reject %s" src) true
        (match Oem.parse src with
         | exception Oem.Parse_error _ -> true
         | _ -> false))
    [
      "";
      "<a, set, {";
      "<a, int, \"oops\">";
      (* declared/actual type mismatch *)
      "<a, zoo, 1>";
      "<a, set, {}> trailing";
    ];
  (* dangling reference caught at graph building *)
  check "dangling ref" true
    (match Oem.to_graph (Oem.parse "<a, set, { &ghost }>") with
     | exception Oem.Parse_error _ -> true
     | _ -> false)

let figure1_roundtrip () =
  let g = Ssd_workload.Movies.figure1 () in
  let doc = Oem.of_graph ~top:"db" g in
  let g' = Oem.to_graph doc in
  (* of_graph wraps everything under one top edge *)
  check "round-trip under the top edge" true
    (Ssd.Bisim.equal (Graph.edge (Label.sym "db") g) g');
  (* and the text form round-trips too *)
  let g'' = Oem.to_graph (Oem.parse (Oem.to_string doc)) in
  check "textual round-trip" true (Ssd.Bisim.equal g' g'')

let properties =
  [
    qtest "of_graph/to_graph round-trip (bisim)" ~count:60 graph (fun g ->
        let doc = Oem.of_graph g in
        Ssd.Bisim.equal (Graph.edge (Label.sym "db") g) (Oem.to_graph doc));
    qtest "print/parse/to_graph round-trip" ~count:60 graph (fun g ->
        let doc = Oem.of_graph g in
        let doc' = Oem.parse (Oem.to_string doc) in
        Ssd.Bisim.equal (Oem.to_graph doc) (Oem.to_graph doc'));
  ]

let tests =
  [
    Alcotest.test_case "parse sample" `Quick parse_sample;
    Alcotest.test_case "to_graph semantics" `Quick to_graph_semantics;
    Alcotest.test_case "references shared" `Quick reference_is_shared_not_copied;
    Alcotest.test_case "cyclic OEM" `Quick cyclic_oem;
    Alcotest.test_case "parse errors" `Quick parse_errors;
    Alcotest.test_case "figure1 round-trip" `Quick figure1_roundtrip;
  ]
  @ properties
