module Label = Ssd.Label
module Tree = Ssd.Tree
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sym s = Label.sym s
let leaf s = Tree.leaf (sym s)

let construction () =
  check "empty is empty" true (Tree.is_empty Tree.empty);
  check_int "leaf has one edge" 1 (Tree.out_degree (leaf "a"));
  let t = Tree.of_edges [ (sym "b", Tree.empty); (sym "a", Tree.empty) ] in
  (* canonical order is sorted *)
  Alcotest.(check (list string))
    "edges sorted" [ "a"; "b" ]
    (List.map (fun (l, _) -> Label.to_string l) (Tree.edges t))

let set_semantics () =
  let a = leaf "a" in
  check "duplicate edges absorbed" true
    (Tree.equal a (Tree.union a a));
  let t1 = Tree.of_edges [ (sym "a", Tree.empty); (sym "a", Tree.empty) ] in
  check_int "of_edges dedups" 1 (Tree.out_degree t1);
  (* ... but edges with the same label and different subtrees are kept *)
  let t2 = Tree.of_edges [ (sym "a", leaf "x"); (sym "a", leaf "y") ] in
  check_int "same label, different subtrees" 2 (Tree.out_degree t2)

let size_and_depth () =
  let t = Ssd.Syntax.parse_tree "{a: {b: {c}}, d}" in
  check_int "size" 4 (Tree.size t);
  check_int "depth" 3 (Tree.depth t);
  check_int "empty depth" 0 (Tree.depth Tree.empty)

let subtrees () =
  let t = Ssd.Syntax.parse_tree "{a: {x}, a: {y}, b: {z}}" in
  check_int "two a-subtrees" 2 (List.length (Tree.subtrees_with_label t (sym "a")));
  check_int "no c-subtrees" 0 (List.length (Tree.subtrees_with_label t (sym "c")))

let searching () =
  let t = Ssd.Syntax.parse_tree {| {movie: {title: "Casablanca", cast: {actor: "Bogart"}}} |} in
  check "mem Casablanca" true (Tree.mem_label t (Label.str "Casablanca"));
  check "not mem Allen" false (Tree.mem_label t (Label.str "Allen"));
  let paths = Tree.find_paths_to t (Label.equal (Label.str "Bogart")) in
  Alcotest.(check (list (list string)))
    "path to Bogart"
    [ [ "movie"; "cast"; "actor"; "\"Bogart\"" ] ]
    (List.map (List.map Label.to_string) paths)

let map_and_filter () =
  let t = Ssd.Syntax.parse_tree "{a: {b}, c}" in
  let upper = function
    | Label.Sym s -> Label.sym (String.uppercase_ascii s)
    | l -> l
  in
  check "map_labels" true
    (Tree.equal (Tree.map_labels upper t) (Ssd.Syntax.parse_tree "{A: {B}, C}"));
  check "filter drops subtree" true
    (Tree.equal
       (Tree.filter_edges (fun l _ -> not (Label.equal l (sym "a"))) t)
       (Ssd.Syntax.parse_tree "{c}"))

let properties =
  [
    qtest "union commutative" (Q.pair tree tree) (fun (a, b) ->
        Tree.equal (Tree.union a b) (Tree.union b a));
    qtest "union associative" (Q.triple tree tree tree) (fun (a, b, c) ->
        Tree.equal (Tree.union a (Tree.union b c)) (Tree.union (Tree.union a b) c));
    qtest "union idempotent" tree (fun t -> Tree.equal (Tree.union t t) t);
    qtest "empty is the unit" tree (fun t -> Tree.equal (Tree.union t Tree.empty) t);
    qtest "unions = fold of union" (Q.list_size (Q.int_range 0 5) tree) (fun ts ->
        Tree.equal (Tree.unions ts) (List.fold_left Tree.union Tree.empty ts));
    qtest "of_edges canonical: reparse of edges is equal" tree (fun t ->
        Tree.equal t (Tree.of_edges (Tree.edges t)));
    qtest "map_labels id" tree (fun t -> Tree.equal (Tree.map_labels Fun.id t) t);
    qtest "paths count = size + 1" tree (fun t ->
        (* every edge contributes exactly one path endpoint, plus the root;
           holds because canonical trees have no duplicate edges *)
        List.length (Tree.paths t) = Tree.size t + 1);
    qtest "compare consistent with equal" (Q.pair tree tree) (fun (a, b) ->
        Tree.equal a b = (Tree.compare a b = 0));
    qtest "depth <= size" tree (fun t -> Tree.depth t <= Tree.size t);
    qtest "union size bounds" (Q.pair tree tree) (fun (a, b) ->
        let s = Tree.size (Tree.union a b) in
        s <= Tree.size a + Tree.size b && s >= max (Tree.size a) (Tree.size b));
    qtest "pp/parse round-trip" tree (fun t ->
        Tree.equal t (Ssd.Syntax.parse_tree (Tree.to_string t)));
  ]

let tests =
  [
    Alcotest.test_case "construction" `Quick construction;
    Alcotest.test_case "set semantics" `Quick set_semantics;
    Alcotest.test_case "size and depth" `Quick size_and_depth;
    Alcotest.test_case "subtrees_with_label" `Quick subtrees;
    Alcotest.test_case "searching" `Quick searching;
    Alcotest.test_case "map and filter" `Quick map_and_filter;
  ]
  @ properties
