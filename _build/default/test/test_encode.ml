module Label = Ssd.Label
module Tree = Ssd.Tree
module Graph = Ssd.Graph
module Encode = Ssd.Encode
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample_db () =
  [
    {
      Encode.rel_name = "r";
      attrs = [ "a"; "b" ];
      rows = [ [ Label.int 1; Label.str "x" ]; [ Label.int 2; Label.str "y" ] ];
    };
    { Encode.rel_name = "s"; attrs = [ "k" ]; rows = [ [ Label.bool true ] ] };
  ]

let roundtrip () =
  let db = sample_db () in
  let back = Encode.database_of_tree (Encode.tree_of_database db) in
  check_int "two relations" 2 (List.length back);
  let r = List.find (fun r -> r.Encode.rel_name = "r") back in
  check "attrs sorted but complete" true (List.sort compare r.Encode.attrs = [ "a"; "b" ]);
  check_int "rows preserved" 2 (List.length r.Encode.rows)

let duplicate_rows_collapse () =
  let rel =
    { Encode.rel_name = "r"; attrs = [ "a" ]; rows = [ [ Label.int 1 ]; [ Label.int 1 ] ] }
  in
  let back = Encode.relation_of_tree ~name:"r" (Encode.tree_of_relation rel) in
  check_int "set semantics" 1 (List.length back.Encode.rows)

let ill_formed () =
  let raises f = match f () with exception Encode.Ill_formed _ -> true | _ -> false in
  check "arity mismatch" true
    (raises (fun () ->
         Encode.tree_of_relation
           { Encode.rel_name = "r"; attrs = [ "a"; "b" ]; rows = [ [ Label.int 1 ] ] }));
  check "non-tuple edge" true
    (raises (fun () ->
         Encode.relation_of_tree ~name:"r" (Ssd.Syntax.parse_tree "{row: {a: {1}}}")));
  check "tuples disagree" true
    (raises (fun () ->
         Encode.relation_of_tree ~name:"r"
           (Ssd.Syntax.parse_tree "{tuple: {a: {1}}, tuple: {b: {2}}}")));
  check "missing value" true
    (raises (fun () ->
         Encode.relation_of_tree ~name:"r" (Ssd.Syntax.parse_tree "{tuple: {a: {}}}")))

let oo_sharing () =
  let objs =
    [
      { Encode.oid = 1; cls = "dept"; fields = [ ("name", Encode.Base (Label.str "CS")) ] };
      {
        Encode.oid = 2;
        cls = "emp";
        fields = [ ("dept", Encode.Ref 1); ("name", Encode.Base (Label.str "Ann")) ];
      };
      {
        Encode.oid = 3;
        cls = "emp";
        fields = [ ("dept", Encode.Ref 1); ("name", Encode.Base (Label.str "Bob")) ];
      };
    ]
  in
  let g = Encode.graph_of_objects ~roots:[ 2; 3 ] objs in
  (* The dept node is shared: root(1) + emp(2) + dept(1) + per-field value
     nodes.  Check sharing via node count vs. its unfolded tree. *)
  let tree_edges = Tree.size (Graph.to_tree g) in
  let graph_edges = Graph.n_edges g in
  check "sharing means fewer graph edges than tree edges" true (graph_edges < tree_edges);
  (* both employees reach the same CS leaf *)
  let t = Graph.to_tree g in
  check_int "CS appears twice in the unfolding" 2
    (List.length (Tree.find_paths_to t (Label.equal (Label.str "CS"))))

let oo_cycles () =
  let objs =
    [
      { Encode.oid = 1; cls = "a"; fields = [ ("next", Encode.Ref 2) ] };
      { Encode.oid = 2; cls = "b"; fields = [ ("next", Encode.Ref 1) ] };
    ]
  in
  let g = Encode.graph_of_objects ~roots:[ 1 ] objs in
  check "reference cycle preserved" false (Graph.is_acyclic g)

let oo_errors () =
  let raises f = match f () with exception Encode.Ill_formed _ -> true | _ -> false in
  check "dangling ref" true
    (raises (fun () ->
         Encode.graph_of_objects ~roots:[ 1 ]
           [ { Encode.oid = 1; cls = "a"; fields = [ ("r", Encode.Ref 99) ] } ]));
  check "duplicate oid" true
    (raises (fun () ->
         Encode.graph_of_objects ~roots:[ 1 ]
           [
             { Encode.oid = 1; cls = "a"; fields = [] };
             { Encode.oid = 1; cls = "b"; fields = [] };
           ]));
  check "unknown root" true
    (raises (fun () -> Encode.graph_of_objects ~roots:[ 5 ] []))

let set_fields () =
  let objs =
    [
      {
        Encode.oid = 1;
        cls = "team";
        fields =
          [ ("members", Encode.Fset [ Encode.Base (Label.str "a"); Encode.Base (Label.str "b") ]) ];
      };
    ]
  in
  let g = Encode.graph_of_objects ~roots:[ 1 ] objs in
  let t = Graph.to_tree g in
  check_int "two member edges" 2
    (List.length (Tree.find_paths_to t (Label.equal (Label.sym "member"))))

(* random relational database generator *)
let rand_relation : Encode.relation Q.t =
  let open Q in
  let* name = oneofl [ "r"; "s"; "t" ] in
  let* attrs = oneofl [ [ "a" ]; [ "a"; "b" ]; [ "x"; "y"; "z" ] ] in
  let* rows = list_size (int_range 0 6) (list_repeat (List.length attrs) label) in
  pure { Encode.rel_name = name; attrs; rows }

let properties =
  [
    qtest "relation round-trip up to row set" rand_relation (fun r ->
        let back = Encode.relation_of_tree ~name:r.Encode.rel_name (Encode.tree_of_relation r) in
        (* attrs may be reordered; compare projected row sets *)
        let normalize rel =
          List.map
            (fun row ->
              List.sort compare (List.combine rel.Encode.attrs (List.map Label.to_string row)))
            rel.Encode.rows
          |> List.sort_uniq compare
        in
        normalize back = normalize r);
    qtest "encoding conforms to the relational shape" rand_relation (fun r ->
        let t = Encode.tree_of_relation r in
        List.for_all (fun (l, _) -> Label.equal l (Label.sym "tuple")) (Tree.edges t));
  ]

let tests =
  [
    Alcotest.test_case "database round-trip" `Quick roundtrip;
    Alcotest.test_case "duplicate rows collapse" `Quick duplicate_rows_collapse;
    Alcotest.test_case "ill-formed relational trees" `Quick ill_formed;
    Alcotest.test_case "OO sharing" `Quick oo_sharing;
    Alcotest.test_case "OO cycles" `Quick oo_cycles;
    Alcotest.test_case "OO errors" `Quick oo_errors;
    Alcotest.test_case "set fields" `Quick set_fields;
  ]
  @ properties
