module Label = Ssd.Label
module Graph = Ssd.Graph
module Value_index = Ssd_index.Value_index
module Text_index = Ssd_index.Text_index
module Path_index = Ssd_index.Path_index
module Stats = Ssd_index.Stats
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig1 = Ssd_workload.Movies.figure1 ()

let value_index_basics () =
  let idx = Value_index.build fig1 in
  check_int "Bogart occurs twice" 2 (List.length (Value_index.find idx (Label.str "Bogart")));
  check_int "Allen occurs twice" 2 (List.length (Value_index.find idx (Label.str "Allen")));
  check "absent label" true (Value_index.find idx (Label.str "zzz") = []);
  check "mem" true (Value_index.mem idx (Label.sym "movie"));
  check "n_labels positive" true (Value_index.n_labels idx > 10)

let text_index_basics () =
  let idx = Text_index.build fig1 in
  (* The browsing query of section 1.3: attribute names starting with act *)
  let acts = Text_index.find_prefix idx "act" in
  check_int "two actors attributes" 2 (List.length acts);
  check "all are the actors symbol" true
    (List.for_all (fun o -> o.Text_index.label = Label.sym "actors") acts);
  check_int "word search in multi-word strings" 1
    (List.length (Text_index.find_word idx "sam"));
  check "exact" true
    (List.length (Text_index.find_exact idx "Casablanca") = 2);
  check "scan_contains agrees" true
    (List.length (Text_index.scan_contains fig1 "asablanc") = 2)

let path_index_basics () =
  let idx = Path_index.build ~depth:3 fig1 in
  let path = [ Label.sym "entry"; Label.sym "movie"; Label.sym "title" ] in
  check "find = traverse" true
    (Path_index.find idx path = Some (Path_index.traverse fig1 path));
  check "too-deep path returns None" true
    (Path_index.find idx (path @ [ Label.str "Casablanca" ]) = None);
  check "indexed missing path is Some []" true
    (Path_index.find idx [ Label.sym "nope" ] = Some []);
  check "empty path = root" true (Path_index.find idx [] = Some [ Graph.root fig1 ])

let stats_fig1 () =
  let s = Stats.compute fig1 in
  check "cyclic" true s.Stats.cyclic;
  check "depth none when cyclic" true (s.Stats.depth = None);
  check_int "entry among top labels" 3
    (List.assoc (Label.sym "entry") (Stats.top_labels fig1 ~k:5))

let some_label g =
  match Graph.fold_labeled_edges (fun acc _ l _ -> l :: acc) [] g with
  | [] -> None
  | l :: _ -> Some l

let properties =
  [
    qtest "value index = scan" graph (fun g ->
        let idx = Value_index.build g in
        match some_label g with
        | None -> true
        | Some l ->
          List.sort compare (Value_index.find idx l)
          = List.sort compare (Value_index.scan g l));
    qtest "value index covers every edge" graph (fun g ->
        let idx = Value_index.build g in
        Graph.fold_labeled_edges
          (fun acc u l v ->
            acc && List.mem { Value_index.src = u; dst = v } (Value_index.find idx l))
          true g);
    qtest "path index agrees with traversal to depth" (Q.pair graph (Q.int_range 0 3))
      (fun (g, depth) ->
        let idx = Path_index.build ~depth g in
        (* check every indexed path *)
        let rec walk u path len acc =
          if len > depth then acc
          else
            List.fold_left
              (fun acc (l, v) -> walk v (path @ [ l ]) (len + 1) acc)
              (path :: acc)
              (Graph.labeled_succ g u)
        in
        let paths = List.sort_uniq compare (walk (Graph.root g) [] 0 []) in
        List.for_all
          (fun p ->
            match Path_index.find idx p with
            | Some nodes ->
              List.sort compare nodes = List.sort compare (Path_index.traverse g p)
            | None -> false)
          paths);
    qtest "stats node/edge counts match graph" graph (fun g ->
        let g' = Graph.eps_eliminate g in
        let s = Stats.compute g in
        s.Stats.n_nodes = Graph.n_nodes g' && s.Stats.n_edges = Graph.n_edges g');
    qtest "stats: leaves and cyclicity consistent" graph (fun g ->
        let s = Stats.compute g in
        s.Stats.n_leaves <= s.Stats.n_nodes
        && (s.Stats.cyclic = Option.is_none s.Stats.depth));
    qtest "top label counts sum to edge count" graph (fun g ->
        let s = Stats.compute g in
        let tops = Stats.top_labels g ~k:max_int in
        List.fold_left (fun acc (_, c) -> acc + c) 0 tops = s.Stats.n_edges);
  ]

let tests =
  [
    Alcotest.test_case "value index basics" `Quick value_index_basics;
    Alcotest.test_case "text index basics" `Quick text_index_basics;
    Alcotest.test_case "path index basics" `Quick path_index_basics;
    Alcotest.test_case "stats of figure 1" `Quick stats_fig1;
  ]
  @ properties
