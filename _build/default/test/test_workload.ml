module Label = Ssd.Label
module Graph = Ssd.Graph
module Stats = Ssd_index.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let determinism () =
  let pairs =
    [
      (fun () -> Ssd_workload.Movies.generate ~seed:5 ~n_entries:40 ());
      (fun () -> Ssd_workload.Webgraph.generate ~seed:5 ~n_pages:60 ());
      (fun () -> Ssd_workload.Biodb.generate ~seed:5 ~n_taxa:50 ());
      (fun () -> Ssd_workload.Bibdb.generate ~seed:5 ~n_papers:30 ());
      (fun () -> Ssd_workload.Randtree.generate ~seed:5 ~regularity:0.5 ~n_edges:80 ());
    ]
  in
  List.iteri
    (fun i gen ->
      check (Printf.sprintf "generator %d deterministic" i) true
        (Ssd.Bisim.equal (gen ()) (gen ())))
    pairs

let figure1_shape () =
  let g = Ssd_workload.Movies.figure1 () in
  let s = Stats.compute g in
  check "cyclic (references pair)" true s.Stats.cyclic;
  check_int "three entries" 3 (List.assoc (Label.sym "entry") (Stats.top_labels g ~k:3));
  (* the two cast encodings coexist *)
  let idx = Ssd_index.Value_index.build g in
  check "nested credit encoding present" true (Ssd_index.Value_index.mem idx (Label.sym "credit"));
  check "special_guests encoding present" true
    (Ssd_index.Value_index.mem idx (Label.sym "special_guests"));
  (* integer-labeled episode edges (arrays as int edges) *)
  check "episode array uses int labels" true (Ssd_index.Value_index.mem idx (Label.int 2))

let movies_scale_and_irregularity () =
  let g = Ssd_workload.Movies.generate ~seed:1 ~n_entries:300 () in
  let idx = Ssd_index.Value_index.build g in
  check_int "300 entries" 300 (List.length (Ssd_index.Value_index.find idx (Label.sym "entry")));
  (* both cast encodings occur at scale *)
  check "credit encoding occurs" true (Ssd_index.Value_index.mem idx (Label.sym "credit"));
  let direct =
    List.length (Ssd_index.Value_index.find idx (Label.sym "actors"))
    > List.length (Ssd_index.Value_index.find idx (Label.sym "credit"))
  in
  check "direct encoding occurs too" true direct;
  check "references make it cyclic" true (not (Graph.is_acyclic g))

let webgraph_shape () =
  let g = Ssd_workload.Webgraph.generate ~seed:2 ~n_pages:100 ~n_hosts:5 () in
  let idx = Ssd_index.Value_index.build g in
  check_int "5 hosts" 5 (List.length (Ssd_index.Value_index.find idx (Label.sym "host")));
  check_int "100 pages" 100 (List.length (Ssd_index.Value_index.find idx (Label.sym "page")));
  check "links exist" true (Ssd_index.Value_index.mem idx (Label.sym "link"));
  check "cyclic" true (not (Graph.is_acyclic g))

let biodb_depth () =
  let g = Ssd_workload.Biodb.generate ~seed:3 ~n_taxa:400 () in
  let s = Stats.compute g in
  check "acyclic tree" true (not s.Stats.cyclic);
  (* "trees of arbitrary depth": significantly deeper than a balanced
     3-ary tree over 400 nodes (depth ~6) *)
  (match s.Stats.depth with
   | Some d -> check "arbitrary depth" true (d > 12)
   | None -> Alcotest.fail "expected a depth")

let bibdb_sharing () =
  let g = Ssd_workload.Bibdb.generate ~seed:4 ~n_papers:50 () in
  check "acyclic (cites point backwards)" true (Graph.is_acyclic g);
  (* shared author objects: minimization keeps them, but the unfolded tree
     is much larger than the graph *)
  let tree_size = Ssd.Tree.size (Graph.to_tree g) in
  check "DAG smaller than its unfolding" true (Graph.n_edges g < tree_size)

let randtree_regularity () =
  let guide r =
    Ssd_schema.Dataguide.n_nodes
      (Ssd_schema.Dataguide.build
         (Ssd_workload.Randtree.generate ~seed:6 ~regularity:r ~n_edges:500 ()))
  in
  check "regular data has a tiny guide" true (guide 1.0 < 20);
  check "irregular data has a big guide" true (guide 0.0 > 100)

let tests =
  [
    Alcotest.test_case "determinism" `Quick determinism;
    Alcotest.test_case "figure1 shape" `Quick figure1_shape;
    Alcotest.test_case "movies scale and irregularity" `Quick movies_scale_and_irregularity;
    Alcotest.test_case "webgraph shape" `Quick webgraph_shape;
    Alcotest.test_case "biodb depth" `Quick biodb_depth;
    Alcotest.test_case "bibdb sharing" `Quick bibdb_sharing;
    Alcotest.test_case "randtree regularity dial" `Quick randtree_regularity;
  ]
