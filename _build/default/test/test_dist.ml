module Graph = Ssd.Graph
module Nfa = Ssd_automata.Nfa
module Product = Ssd_automata.Product
module Decompose = Ssd_dist.Decompose
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let single_site_is_centralized () =
  let g = Ssd_workload.Webgraph.generate ~n_pages:100 () in
  let nfa = Nfa.of_string "host.page.(link)*.title._" in
  let partition = Array.make (Graph.n_nodes g) 0 in
  let answers, stats = Decompose.eval g partition nfa in
  check "same answers" true (answers = Product.accepting_nodes g nfa);
  check_int "no cross edges" 0 stats.Decompose.cross_edges;
  check_int "no messages" 0 stats.Decompose.messages;
  check_int "one round" 1 stats.Decompose.rounds

let partitions_cover_sites () =
  let g = Ssd_workload.Webgraph.generate ~n_pages:200 () in
  List.iter
    (fun k ->
      let p = Decompose.partition_bfs ~k g in
      check "site ids in range" true (Array.for_all (fun s -> s >= 0 && s < k) p);
      let p = Decompose.partition_random ~seed:3 ~k g in
      check "random site ids in range" true (Array.for_all (fun s -> s >= 0 && s < k) p))
    [ 1; 2; 5; 16 ]

let bfs_partition_has_locality () =
  let g = Ssd_workload.Webgraph.generate ~n_pages:500 ~locality:0.9 () in
  let cross partition =
    Graph.fold_labeled_edges
      (fun acc u _ v -> if partition.(u) <> partition.(v) then acc + 1 else acc)
      0 g
  in
  check "bfs cuts fewer edges than random" true
    (cross (Decompose.partition_bfs ~k:4 g) < cross (Decompose.partition_random ~seed:1 ~k:4 g))

let queries = [ "host.page.(link)*.title._"; "(~nothing)*"; "host.name._"; "_._._" ]

let properties =
  [
    qtest "decomposed = centralized (bfs partitions)" ~count:40
      (Q.pair graph (Q.int_range 1 5))
      (fun (g, k) ->
        List.for_all
          (fun q ->
            let nfa = Nfa.of_string q in
            let partition = Decompose.partition_bfs ~k g in
            fst (Decompose.eval g partition nfa) = Product.accepting_nodes g nfa)
          queries);
    qtest "decomposed = centralized (random partitions)" ~count:40
      (Q.triple graph (Q.int_range 1 5) (Q.int_range 0 100))
      (fun (g, k, seed) ->
        let nfa = Nfa.of_string "(a|b)*.c?" in
        let partition = Decompose.partition_random ~seed ~k g in
        fst (Decompose.eval g partition nfa) = Product.accepting_nodes g nfa);
    qtest "work-efficiency: total local work = sequential work" ~count:40
      (Q.pair graph (Q.int_range 1 5))
      (fun (g, k) ->
        let nfa = Nfa.of_string "(a)*.b?" in
        let partition = Decompose.partition_bfs ~k g in
        let _, stats = Decompose.eval g partition nfa in
        Array.fold_left ( + ) 0 stats.Decompose.local_work = stats.Decompose.sequential_work);
    qtest "makespan between max-site and total work" ~count:40
      (Q.pair graph (Q.int_range 1 5))
      (fun (g, k) ->
        let nfa = Nfa.of_string "(a|b)*" in
        let partition = Decompose.partition_bfs ~k g in
        let _, stats = Decompose.eval g partition nfa in
        let total = Array.fold_left ( + ) 0 stats.Decompose.local_work in
        let slowest = Array.fold_left max 0 stats.Decompose.local_work in
        stats.Decompose.makespan >= slowest && stats.Decompose.makespan <= total);
  ]

let tests =
  [
    Alcotest.test_case "single site is centralized" `Quick single_site_is_centralized;
    Alcotest.test_case "partitions cover sites" `Quick partitions_cover_sites;
    Alcotest.test_case "bfs partition has locality" `Quick bfs_partition_has_locality;
  ]
  @ properties
