module Label = Ssd.Label
module Tree = Ssd.Tree
module Graph = Ssd.Graph
module Bisim = Ssd.Bisim
module Simulation = Ssd.Simulation
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Ssd.Syntax.parse_graph

(* ------------------------------------------------------------------ *)
(* Bisimulation                                                        *)
(* ------------------------------------------------------------------ *)

let classic_cycle_lengths () =
  (* A self-loop and a 2-cycle both denote the infinite tree a.a.a... *)
  let one = parse "&r {a: *r}" in
  let two = parse "&r {a: {a: *r}}" in
  check "1-cycle = 2-cycle" true (Bisim.equal one two);
  check_int "both minimize to one node" 1 (Graph.n_nodes (Bisim.minimize two))

let cycle_vs_finite () =
  let cyc = parse "&r {a: *r}" in
  let fin = parse "{a: {a: {a: {}}}}" in
  check "infinite <> finite" false (Bisim.equal cyc fin)

let sharing_vs_copies () =
  let shared = parse "{l: &s {v}, r: *s}" in
  let copied = parse "{l: {v}, r: {v}}" in
  check "shared = copied" true (Bisim.equal shared copied)

let label_sensitivity () =
  check "different labels differ" false (Bisim.equal (parse "&r {a: *r}") (parse "&r {b: *r}"));
  check "subtree matters" false (Bisim.equal (parse "{a: {b}}") (parse "{a: {c}}"))

let minimize_compresses () =
  (* Ten bisimilar leaves collapse to one node. *)
  let b = Graph.Builder.create () in
  let r = Graph.Builder.add_node b in
  Graph.Builder.set_root b r;
  for _ = 1 to 10 do
    let v = Graph.Builder.add_node b in
    Graph.Builder.add_edge b r (Label.sym "item") v
  done;
  let g = Graph.Builder.finish b in
  let m = Bisim.minimize g in
  check_int "minimized to 2 nodes" 2 (Graph.n_nodes m);
  check "still equal" true (Bisim.equal g m)

let bisim_properties =
  [
    qtest "equal reflexive" graph (fun g -> Bisim.equal g g);
    qtest "equal symmetric" (Q.pair graph graph) (fun (a, b) ->
        Bisim.equal a b = Bisim.equal b a);
    qtest "agrees with tree equality on DAGs" (Q.pair dag dag) (fun (a, b) ->
        Bisim.equal a b = Tree.equal (Graph.to_tree a) (Graph.to_tree b));
    qtest "minimize preserves the value" graph (fun g -> Bisim.equal g (Bisim.minimize g));
    qtest "minimize never grows" graph (fun g ->
        Graph.n_nodes (Bisim.minimize g) <= Graph.n_nodes (Graph.gc (Graph.eps_eliminate g)));
    qtest "minimize idempotent (same size)" graph (fun g ->
        let m = Bisim.minimize g in
        Graph.n_nodes (Bisim.minimize m) = Graph.n_nodes m);
    qtest "n_classes = minimized size" graph (fun g ->
        Bisim.n_classes g = Graph.n_nodes (Bisim.minimize g));
    qtest "partition blocks respect bisimilarity" graph ~count:50 (fun g ->
        let block, g' = Bisim.partition g in
        (* nodes in the same block must have equal label-signatures over
           blocks — re-check the fixpoint condition *)
        let signature u =
          Graph.labeled_succ g' u
          |> List.map (fun (l, v) -> (l, block.(v)))
          |> List.sort_uniq compare
        in
        let ok = ref true in
        for u = 0 to Graph.n_nodes g' - 1 do
          for v = u + 1 to Graph.n_nodes g' - 1 do
            if block.(u) = block.(v) && signature u <> signature v then ok := false
          done
        done;
        !ok);
  ]

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)
(* ------------------------------------------------------------------ *)

let subset_simulates () =
  let small = parse "{movie: {title}}" in
  let big = parse "{movie: {title, cast}, tvshow: {}}" in
  check "small <= big" true (Simulation.simulates small big);
  check "big !<= small" false (Simulation.simulates big small)

let simulation_not_bisimulation () =
  (* Classic: a(b+c) + ab vs a(b+c) are mutually similar — the extra
     a-branch with only b is absorbed — but not bisimilar. *)
  let extra = parse "{a: {b, c}, a: {b}}" in
  let joined = parse "{a: {b, c}}" in
  check "extra <= joined" true (Simulation.simulates extra joined);
  check "similar" true (Simulation.similar extra joined);
  check "but not bisimilar" false (Bisim.equal extra joined);
  (* and one-directional simulation is strictly one-directional here: *)
  let split = parse "{a: {b}, a: {c}}" in
  check "split <= joined" true (Simulation.simulates split joined);
  check "joined !<= split" false (Simulation.simulates joined split)

let sim_properties =
  [
    qtest "simulates reflexive" graph (fun g -> Simulation.simulates g g);
    qtest "bisimilar implies similar" graph (fun g ->
        let m = Bisim.minimize g in
        Simulation.similar g m);
    qtest "every graph simulated by its single-node closure" graph (fun g ->
        (* the complete one-node graph over the graph's labels simulates
           everything built from those labels *)
        let labels =
          Graph.fold_labeled_edges (fun acc _ l _ -> l :: acc) [] (Graph.eps_eliminate g)
          |> List.sort_uniq Label.compare
        in
        let b = Graph.Builder.create () in
        let r = Graph.Builder.add_node b in
        Graph.Builder.set_root b r;
        List.iter (fun l -> Graph.Builder.add_edge b r l r) labels;
        Simulation.simulates g (Graph.Builder.finish b));
    qtest "simulation transitive through minimize" graph ~count:50 (fun g ->
        Simulation.simulates g (Bisim.minimize (Bisim.minimize g)));
  ]

let tests =
  [
    Alcotest.test_case "cycle lengths collapse" `Quick classic_cycle_lengths;
    Alcotest.test_case "cycle vs finite" `Quick cycle_vs_finite;
    Alcotest.test_case "sharing vs copies" `Quick sharing_vs_copies;
    Alcotest.test_case "label sensitivity" `Quick label_sensitivity;
    Alcotest.test_case "minimize compresses" `Quick minimize_compresses;
    Alcotest.test_case "subset simulates" `Quick subset_simulates;
    Alcotest.test_case "simulation is weaker than bisimulation" `Quick simulation_not_bisimulation;
  ]
  @ bisim_properties @ sim_properties
