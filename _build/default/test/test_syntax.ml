module Label = Ssd.Label
module Tree = Ssd.Tree
module Graph = Ssd.Graph
module Syntax = Ssd.Syntax
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sugar () =
  (* A bare label is {label: {}} both as an entry and as a value. *)
  check "bare entry" true
    (Tree.equal (Syntax.parse_tree "{a}") (Syntax.parse_tree "{a: {}}"));
  check "bare value" true
    (Tree.equal (Syntax.parse_tree "{a: b}") (Syntax.parse_tree "{a: {b: {}}}"))

let literals () =
  let t = Syntax.parse_tree {| {i: 42, f: 1.5, s: "str", b: true, neg: -3} |} in
  check "int" true (Tree.mem_label t (Label.int 42));
  check "float" true (Tree.mem_label t (Label.float 1.5));
  check "string" true (Tree.mem_label t (Label.str "str"));
  check "bool" true (Tree.mem_label t (Label.bool true));
  check "negative" true (Tree.mem_label t (Label.int (-3)))

let comments_and_ws () =
  let t = Syntax.parse_tree "{\n  # a comment\n  a: {b}\n}" in
  check_int "comment skipped" 2 (Tree.size t)

let escapes () =
  let t = Syntax.parse_tree {| {"with \"quotes\" and \n newline"} |} in
  check "escape round-trips" true (Tree.mem_label t (Label.str "with \"quotes\" and \n newline"))

let sharing_is_dag () =
  let g = Syntax.parse_graph "{l: &s {deep: {v}}, r: *s}" in
  (* shared node stored once *)
  check_int "nodes shared, not copied" 4
    (Graph.n_nodes (Graph.gc (Graph.eps_eliminate g)))

let forward_reference () =
  let g = Syntax.parse_graph "{first: *later, second: &later {v}}" in
  check "forward ref resolves" true
    (Tree.equal (Graph.to_tree g) (Syntax.parse_tree "{first: {v}, second: {v}}"))

let errors () =
  let rejects src =
    check (Printf.sprintf "reject %s" src) true
      (match Syntax.parse_graph src with
       | exception Syntax.Parse_error _ -> true
       | _ -> false)
  in
  rejects "{a: }";
  rejects "{a";
  rejects "{a: {b}} trailing";
  rejects "*undefined";
  rejects "&x {a: &x {}}";
  (* double binding *)
  rejects "{\"unterminated}";
  rejects "{:}"

let cyclic_needs_graph () =
  check "parse_tree raises on cycles" true
    (match Syntax.parse_tree "&r {a: *r}" with
     | exception Graph.Cyclic -> true
     | _ -> false)

let ( ==> ) a b = (not a) || b

let properties =
  [
    qtest "tree print/parse round-trip" tree (fun t ->
        Tree.equal t (Syntax.parse_tree (Tree.to_string t)));
    qtest "graph print/parse round-trip (bisim)" graph (fun g ->
        Ssd.Bisim.equal g (Syntax.parse_graph (Graph.to_string g)));
    qtest "parse is insensitive to surrounding whitespace/comments" tree (fun t ->
        let src = "  # leading comment\n" ^ Tree.to_string t ^ "\n  # trailing\n" in
        Tree.equal t (Syntax.parse_tree src));
  ]

let tests =
  [
    Alcotest.test_case "sugar" `Quick sugar;
    Alcotest.test_case "literals" `Quick literals;
    Alcotest.test_case "comments and whitespace" `Quick comments_and_ws;
    Alcotest.test_case "escapes" `Quick escapes;
    Alcotest.test_case "sharing is a DAG" `Quick sharing_is_dag;
    Alcotest.test_case "forward reference" `Quick forward_reference;
    Alcotest.test_case "parse errors" `Quick errors;
    Alcotest.test_case "cycles need parse_graph" `Quick cyclic_needs_graph;
  ]
  @ properties
