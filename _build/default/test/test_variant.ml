module Label = Ssd.Label
module Tree = Ssd.Tree
module Variant = Ssd.Variant
open Gen

let check = Alcotest.(check bool)

let leafy_examples () =
  (* A lone base leaf edge is a V2 data leaf. *)
  check "base leaf" true
    (Variant.leafy_of_v1 (Tree.leaf (Label.int 3)) = Variant.Leafy.Base (Label.int 3));
  (* Symbol edges stay edges. *)
  check "symbol edge" true
    (Variant.leafy_of_v1 (Ssd.Syntax.parse_tree "{title: {\"x\"}}")
    = Variant.Leafy.(Node [ ("title", Base (Label.str "x")) ]))

let nodelab_examples () =
  let n =
    Variant.Nodelab.
      { node = Label.sym "root"; children = [ (Label.sym "a", { node = Label.int 1; children = [] }) ] }
  in
  let t = Variant.v1_of_nodelab n in
  (* the node label travels as an extra edge *)
  check "extra node edge" true
    (Tree.equal t (Ssd.Syntax.parse_tree "{node: {root}, a: {node: {1}}}"))

let nodelab_union_motivation () =
  (* The paper: labeling internal nodes "makes the operation of taking the
     union of two trees difficult to define" — after the extra-edge
     encoding, union is just tree union, and the two node labels coexist. *)
  let a = Variant.v1_of_nodelab { Variant.Nodelab.node = Label.sym "x"; children = [] } in
  let b = Variant.v1_of_nodelab { Variant.Nodelab.node = Label.sym "y"; children = [] } in
  let u = Tree.union a b in
  Alcotest.(check int) "both node labels present" 2
    (List.length (Tree.subtrees_with_label u (Label.sym "node")))

(* The sublanguage of trees V2 can represent exactly: every node either a
   lone base leaf edge or all-symbol edges. *)
let rec v2_expressible t =
  match Tree.edges t with
  | [ (b, sub) ] when (not (Label.is_sym b)) && Tree.is_empty sub -> true
  | es -> List.for_all (fun (l, sub) -> Label.is_sym l && v2_expressible sub) es

let symbol_tree : Tree.t Q.t =
  let open Q in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof [ pure Tree.empty; Q.map (fun l -> Tree.leaf l) label ]
         else
           let* width = int_range 0 3 in
           let* edges = list_repeat width (pair (Q.map Label.sym small_symbol) (self (n / 2))) in
           pure (Tree.of_edges edges))

let properties =
  [
    qtest "leafy round-trip from V2" tree (fun t ->
        let l = Variant.leafy_of_v1 t in
        Variant.Leafy.equal l (Variant.leafy_of_v1 (Variant.v1_of_leafy l)));
    qtest "nodelab round-trip from V3" tree (fun t ->
        let root = Label.sym "r" in
        let n = Variant.nodelab_of_v1 ~root t in
        Variant.Nodelab.equal n (Variant.nodelab_of_v1 ~root (Variant.v1_of_nodelab n)));
    qtest "V1 round-trip on the V2-expressible sublanguage" symbol_tree (fun t ->
        (not (v2_expressible t))
        || Tree.equal t (Variant.v1_of_leafy (Variant.leafy_of_v1 t)));
    qtest "leafy normalize idempotent" tree (fun t ->
        let l = Variant.leafy_of_v1 t in
        Variant.Leafy.equal (Variant.Leafy.normalize l) l);
    qtest "conversions preserve symbol-edge counts" symbol_tree ~count:60 (fun t ->
        (* total edges never grow through V2 on symbol trees *)
        let rec leafy_size = function
          | Variant.Leafy.Base _ -> 1
          | Variant.Leafy.Node es ->
            List.fold_left (fun acc (_, sub) -> acc + 1 + leafy_size sub) 0 es
        in
        leafy_size (Variant.leafy_of_v1 t) <= Tree.size t + 1);
  ]

let tests =
  [
    Alcotest.test_case "leafy examples" `Quick leafy_examples;
    Alcotest.test_case "nodelab examples" `Quick nodelab_examples;
    Alcotest.test_case "nodelab union motivation" `Quick nodelab_union_motivation;
  ]
  @ properties
