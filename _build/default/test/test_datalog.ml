module Label = Ssd.Label
module Datalog = Relstore.Datalog
module Triple = Relstore.Triple
module Graph = Ssd.Graph
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sort_tuples = List.sort_uniq compare

let parse_and_print () =
  let p =
    Datalog.parse
      {| % a comment
         tc(?X, ?Y) :- edge(?X, _, ?Y).
         tc(?X, ?Z) :- tc(?X, ?Y), edge(?Y, _, ?Z).
         big(?N)    :- tc(?X, ?N), ?N > 65536.
         odd(?X)    :- node(?X), not even(?X).
         fact(a, "s", 42). |}
  in
  check_int "five rules" 5 (List.length p);
  (* pp then re-parse is stable *)
  let printed = Format.asprintf "%a" Datalog.pp_program p in
  check "pp/parse stable" true (Datalog.parse printed = p)

let safety () =
  let unsafe src =
    match Datalog.eval ~edb:[] (Datalog.parse src) with
    | exception Datalog.Unsafe _ -> true
    | _ -> false
  in
  check "head var unbound" true (unsafe "p(?X) :- q(?Y).");
  check "negated var unbound" true (unsafe "p(?X) :- q(?X), not r(?Z).");
  check "compared var unbound" true (unsafe "p(?X) :- q(?X), ?Z > 1.")

let stratification () =
  check "negation through recursion rejected" true
    (match Datalog.eval ~edb:[] (Datalog.parse "p(?X) :- q(?X), not p(?X).") with
     | exception Datalog.Not_stratified _ -> true
     | _ -> false);
  let p =
    Datalog.parse
      {| reach(?X) :- start(?X).
         reach(?Y) :- reach(?X), e(?X, ?Y).
         unreach(?X) :- node(?X), not reach(?X). |}
  in
  check_int "two strata" 2 (Datalog.n_strata p)

let edb_chain n =
  [
    ("e", List.init (n - 1) (fun i -> [ Label.int i; Label.int (i + 1) ]));
    ("start", [ [ Label.int 0 ] ]);
    ("node", List.init n (fun i -> [ Label.int i ]));
  ]

let transitive_closure () =
  let program =
    Datalog.parse
      {| reach(?X) :- start(?X).
         reach(?Y) :- reach(?X), e(?X, ?Y). |}
  in
  let result = Datalog.query ~edb:(edb_chain 50) program "reach" in
  check_int "all 50 reached" 50 (List.length result)

let stratified_negation () =
  let program =
    Datalog.parse
      {| reach(?X) :- start(?X).
         reach(?Y) :- reach(?X), e(?X, ?Y).
         unreach(?X) :- node(?X), not reach(?X). |}
  in
  let edb =
    [
      ("e", [ [ Label.int 0; Label.int 1 ] ]);
      ("start", [ [ Label.int 0 ] ]);
      ("node", [ [ Label.int 0 ]; [ Label.int 1 ]; [ Label.int 2 ]; [ Label.int 3 ] ]);
    ]
  in
  check "unreachable = {2,3}" true
    (sort_tuples (Datalog.query ~edb program "unreach")
    = [ [ Label.int 2 ]; [ Label.int 3 ] ])

let comparisons () =
  let program = Datalog.parse {| big(?X) :- n(?X), ?X > 10. eq(?X) :- n(?X), ?X = 5. |} in
  let edb = [ ("n", List.init 20 (fun i -> [ Label.int i ])) ] in
  check_int "nine big" 9 (List.length (Datalog.query ~edb program "big"));
  check_int "one eq" 1 (List.length (Datalog.query ~edb program "eq"))

let facts_and_constants () =
  let program =
    Datalog.parse
      {| color(red). color(blue).
         nice(?C) :- color(?C), ?C != red. |}
  in
  check "blue is nice" true
    (Datalog.query ~edb:[] program "nice" = [ [ Label.sym "blue" ] ])

let missing_predicate_is_empty () =
  let program = Datalog.parse "p(?X) :- q(?X)." in
  check "no q facts, empty p" true (Datalog.query ~edb:[] program "p" = []);
  check "unknown predicate" true (Datalog.query ~edb:[] program "zzz" = [])

let cyclic_graph_reachability () =
  let g = Ssd.Syntax.parse_graph "&r {a: {b: *r}, c: {}}" in
  let program =
    Datalog.parse
      {| reach(?X) :- root(?X).
         reach(?Y) :- reach(?X), edge(?X, ?L, ?Y). |}
  in
  let n = List.length (Datalog.query ~edb:(Triple.edb g) program "reach") in
  check_int "terminates on cycles, finds all" (Graph.n_nodes (Graph.eps_eliminate g)) n

let properties =
  [
    qtest "semi-naive = naive on random graphs" ~count:60 graph (fun g ->
        let program =
          Datalog.parse
            {| reach(?X) :- root(?X).
               reach(?Y) :- reach(?X), edge(?X, ?L, ?Y).
               sym(?L)   :- edge(?X, ?L, ?Y).
               far(?Y)   :- reach(?X), edge(?X, ?L, ?Y), edge(?Y, ?L2, ?Z), ?L != ?L2. |}
        in
        let edb = Triple.edb g in
        let norm r = List.map (fun (p, ts) -> (p, sort_tuples ts)) r in
        norm (Datalog.eval ~edb program) = norm (Datalog.eval_naive ~edb program));
    qtest "datalog reach = graph reachability" ~count:60 graph (fun g ->
        let program =
          Datalog.parse
            {| reach(?X) :- root(?X).
               reach(?Y) :- reach(?X), edge(?X, ?L, ?Y). |}
        in
        let n = List.length (Datalog.query ~edb:(Triple.edb g) program "reach") in
        n = Graph.n_nodes (Graph.eps_eliminate g));
    qtest "regular path via datalog = product" ~count:40 graph (fun g ->
        (* reach over only 'a'-labeled edges *)
        let program =
          Datalog.parse
            {| r(?X) :- root(?X).
               r(?Y) :- r(?X), edge(?X, a, ?Y). |}
        in
        let from_datalog =
          Datalog.query ~edb:(Triple.edb g) program "r"
          |> List.filter_map (function [ Label.Int n ] -> Some n | _ -> None)
          |> List.sort_uniq compare
        in
        let g' = Graph.eps_eliminate g in
        let from_product =
          Ssd_automata.Product.accepting_nodes g' (Ssd_automata.Nfa.of_string "(a)*")
          |> List.sort_uniq compare
        in
        from_datalog = from_product);
  ]

let tests =
  [
    Alcotest.test_case "parse and print" `Quick parse_and_print;
    Alcotest.test_case "safety" `Quick safety;
    Alcotest.test_case "stratification" `Quick stratification;
    Alcotest.test_case "transitive closure" `Quick transitive_closure;
    Alcotest.test_case "stratified negation" `Quick stratified_negation;
    Alcotest.test_case "comparisons" `Quick comparisons;
    Alcotest.test_case "facts and constants" `Quick facts_and_constants;
    Alcotest.test_case "missing predicate is empty" `Quick missing_predicate_is_empty;
    Alcotest.test_case "cyclic graph reachability" `Quick cyclic_graph_reachability;
  ]
  @ properties
