(* Path variables (<re> as \p) and guide-accelerated regex generators. *)

module Label = Ssd.Label
module Tree = Ssd.Tree
module Graph = Ssd.Graph
module Ast = Unql.Ast
open Gen

let check = Alcotest.(check bool)

let fig1 = Ssd_workload.Movies.figure1 ()

let path_variable_binds_witness () =
  (* where is "Casablanca"? — now answerable inside the language, with
     the witness path as part of the answer *)
  let result =
    Unql.Eval.run ~db:fig1
      {| select {at: p} where {<_*."Casablanca"> as \p} <- DB |}
  in
  let t = Graph.to_tree result in
  (* one of the witnesses is entry.movie.title."Casablanca" *)
  let chains = Tree.subtrees_with_label t (Label.sym "at") in
  check "two occurrences, two witness chains" true (List.length chains = 2);
  let expected =
    Ssd.Syntax.parse_tree {| {entry: {movie: {title: {"Casablanca"}}}} |}
  in
  check "movie witness present" true (List.exists (Tree.equal expected) chains)

let path_variable_length () =
  (* paths bound by <(a)*> on a chain have the expected shapes *)
  let db = Ssd.Syntax.parse_graph "{a: {a: {a: {}}}}" in
  let result =
    Unql.Eval.run ~db {| select {path: p} where {<(a)*> as \p} <- DB |}
  in
  let t = Graph.to_tree result in
  let chains = Tree.subtrees_with_label t (Label.sym "path") in
  (* four targets: depths 0..3, each with its (unique) witness *)
  check "four witnesses" true (List.length chains = 4);
  check "depths 0..3" true
    (List.sort_uniq compare (List.map Tree.depth chains) = [ 0; 1; 2; 3 ])

let path_variable_on_cycles () =
  (* shortest witness, even where infinitely many paths exist *)
  let db = Ssd.Syntax.parse_graph "&r {a: *r}" in
  let result = Unql.Eval.run ~db {| select {path: p} where {<(a)*> as \p} <- DB |} in
  let t = Graph.to_tree result in
  (match Tree.subtrees_with_label t (Label.sym "path") with
   | [ chain ] -> check "shortest witness is the empty path" true (Tree.is_empty chain)
   | _ -> Alcotest.fail "expected exactly one bound path")

let path_var_in_conditions () =
  (* the bound path is an ordinary tree: usable with equal/isempty *)
  let result =
    Unql.Eval.run ~db:fig1
      {| select {direct}
         where {<_*."Bacall"> as \p} <- DB,
               equal(p, {entry: {movie: {cast: {credit: {actors: {"Bacall"}}}}}}) |}
  in
  check "witness equals the expected path" true
    (not (Tree.is_empty (Graph.to_tree result)))

let pretty_roundtrip_pathvar () =
  let src = {| select {at: p} where {<_*."Casablanca"> as \p} <- DB |} in
  let q = Unql.Parser.parse src in
  let q' = Unql.Parser.parse (Unql.Pretty.expr_to_string q) in
  check "pretty/parse keeps path binder" true
    (Ssd.Bisim.equal (Unql.Eval.eval ~db:fig1 q) (Unql.Eval.eval ~db:fig1 q'))

let guide_accelerated_regex =
  [
    qtest "guide-accelerated regex generator = plain evaluation" ~count:40
      (Q.pair graph regex)
      (fun (g, r) ->
        let guide = Ssd_schema.Dataguide.build g in
        let q =
          Ast.Select
            ( Ast.Tree [ (Ast.Lname "hit", Ast.Var "t") ],
              [ Ast.Gen (Ast.Pedges [ ([ Ast.Sregex (r, None) ], Ast.Pbind "t") ], Ast.Db) ] )
        in
        let plain = Unql.Eval.eval ~db:g q in
        let options = { Unql.Eval.default_options with dataguide = Some guide } in
        let guided = Unql.Eval.eval ~options ~db:g q in
        Ssd.Bisim.equal plain guided);
  ]

let tests =
  [
    Alcotest.test_case "path variable binds a witness" `Quick path_variable_binds_witness;
    Alcotest.test_case "path variable lengths" `Quick path_variable_length;
    Alcotest.test_case "path variable on cycles" `Quick path_variable_on_cycles;
    Alcotest.test_case "path variable in conditions" `Quick path_var_in_conditions;
    Alcotest.test_case "pretty round-trip with binder" `Quick pretty_roundtrip_pathvar;
  ]
  @ guide_accelerated_regex
