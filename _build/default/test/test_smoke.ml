(* End-to-end smoke tests exercising each subsystem once; the per-module
   suites go deeper. *)

module Label = Ssd.Label
module Tree = Ssd.Tree
module Graph = Ssd.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let syntax_roundtrip () =
  let g = Ssd.Syntax.parse_graph {| {entry: {movie: {title: "Casablanca", year: 1942}}} |} in
  let t = Graph.to_tree g in
  check_int "size" 6 (Tree.size t);
  let printed = Graph.to_string g in
  let g2 = Ssd.Syntax.parse_graph printed in
  check "reparse equal" true (Ssd.Bisim.equal g g2)

let cyclic_parse () =
  let g = Ssd.Syntax.parse_graph {| &r {a: {b: *r}, c: {}} |} in
  check "cyclic" true (not (Graph.is_acyclic g));
  let printed = Graph.to_string g in
  let g2 = Ssd.Syntax.parse_graph printed in
  check "cyclic reparse" true (Ssd.Bisim.equal g g2)

let figure1 () =
  let g = Ssd_workload.Movies.figure1 () in
  check "cyclic (references)" true (not (Graph.is_acyclic g));
  let idx = Ssd_index.Value_index.build g in
  check_int "Casablanca occurs twice" 2
    (List.length (Ssd_index.Value_index.find idx (Label.Str "Casablanca")))

let unql_select () =
  let db = Ssd_workload.Movies.figure1 () in
  let result =
    Unql.Eval.run ~db {| select {title: t} where {<entry.movie.title>: \t} <- DB |}
  in
  let t = Graph.to_tree result in
  check_int "two movie titles" 2 (Tree.out_degree t);
  check "has Casablanca" true
    (Tree.mem_label t (Label.Str "Casablanca"))

let unql_regex_negation () =
  (* Did "Allen" appear under a movie without crossing another movie edge? *)
  let db = Ssd_workload.Movies.figure1 () in
  let result =
    Unql.Eval.run ~db
      {| select {found: \l}
         where {<entry.movie>: \m} <- DB,
               {<(~movie)*>.\l} <- m,
               \l = "Allen" |}
  in
  check "found Allen" true (Tree.mem_label (Graph.to_tree result) (Label.Str "Allen"))

let unql_sfun_relabel () =
  let db = Ssd_workload.Movies.figure1 () in
  let via_query = Unql.Eval.run ~db (Unql.Restructure.As_query.relabel ~from_:"movie" ~to_:"film") in
  let direct =
    Unql.Restructure.relabel
      (fun l -> if Label.equal l (Label.Sym "movie") then Label.Sym "film" else l)
      db
  in
  check "sfun = direct relabel" true (Ssd.Bisim.equal via_query direct)

let datalog_reach () =
  let db = Ssd_workload.Movies.figure1 () in
  let edb = Relstore.Triple.edb db in
  let program =
    Relstore.Datalog.parse
      {| reach(?X) :- root(?X).
         reach(?Y) :- reach(?X), edge(?X, ?L, ?Y). |}
  in
  let tuples = Relstore.Datalog.query ~edb program "reach" in
  let g = Graph.eps_eliminate db in
  check_int "datalog reach = all reachable nodes" (Graph.n_nodes g) (List.length tuples)

let dataguide_basic () =
  let db = Ssd_workload.Movies.generate ~seed:1 ~n_entries:50 () in
  let guide = Ssd_schema.Dataguide.build db in
  (* Every dataguide path exists in the data and vice versa: spot check. *)
  let path = [ Label.Sym "entry"; Label.Sym "movie"; Label.Sym "title" ] in
  let from_guide = Ssd_schema.Dataguide.find guide path in
  let by_traversal = Ssd_index.Path_index.traverse db path in
  check "guide = traversal" true
    (List.sort_uniq compare from_guide = List.sort_uniq compare by_traversal)

let lorel_query () =
  let db = Ssd_workload.Movies.figure1 () in
  let result =
    Lorel.Eval.run ~db
      {| select X.title from DB.entry.movie X where X.cast.#.% = "Bogart" |}
  in
  let t = Graph.to_tree result in
  check "one row, Casablanca" true (Tree.mem_label t (Label.Str "Casablanca"));
  check "Sam not selected" true (not (Tree.mem_label t (Label.Str "Play it again, Sam")))

let dist_equals_central () =
  let g = Ssd_workload.Webgraph.generate ~n_pages:200 () in
  let nfa = Ssd_automata.Nfa.of_string "host.page.(link)*.title._" in
  let central = Ssd_automata.Product.accepting_nodes g nfa in
  let partition = Ssd_dist.Decompose.partition_bfs ~k:4 g in
  let distributed, stats = Ssd_dist.Decompose.eval g partition nfa in
  check "same answers" true (central = distributed);
  check "some cross edges" true (stats.Ssd_dist.Decompose.cross_edges > 0)

let schema_conformance () =
  let schema =
    Ssd_schema.Gschema.parse
      {| {entry: {movie: {title: #string, year: #int, cast: {_: {_}},
                          director: #string, budget: #float,
                          references: {}, is_referenced_in: {}},
                  tvshow: {_: {_: {_}}}}} |}
  in
  ignore schema;
  check "parsed" true true

let tests =
  [
    Alcotest.test_case "syntax roundtrip" `Quick syntax_roundtrip;
    Alcotest.test_case "cyclic parse" `Quick cyclic_parse;
    Alcotest.test_case "figure1" `Quick figure1;
    Alcotest.test_case "unql select" `Quick unql_select;
    Alcotest.test_case "unql regex negation" `Quick unql_regex_negation;
    Alcotest.test_case "unql sfun relabel" `Quick unql_sfun_relabel;
    Alcotest.test_case "datalog reach" `Quick datalog_reach;
    Alcotest.test_case "dataguide basic" `Quick dataguide_basic;
    Alcotest.test_case "lorel query" `Quick lorel_query;
    Alcotest.test_case "dist equals central" `Quick dist_equals_central;
    Alcotest.test_case "schema parse" `Quick schema_conformance;
  ]
