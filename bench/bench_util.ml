(* Shared measurement helpers: bechamel for per-operation timings, plus a
   simple wall-clock for one-shot constructions. *)

open Bechamel
open Toolkit

let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]

(* ------------------------------------------------------------------ *)
(* BENCH.json recording                                                *)
(* ------------------------------------------------------------------ *)

(* Every [measure] result (and explicitly recorded metric) lands in a
   global per-experiment table; [write_bench_json] emits the versioned
   document that tools/bench_diff compares across runs. *)
let bench_version = 1
let current_experiment = ref "misc"
let recorded : (string, (string * float) list ref) Hashtbl.t = Hashtbl.create 16
let experiment_order : string list ref = ref []

let set_experiment name =
  current_experiment := name;
  if not (Hashtbl.mem recorded name) then begin
    Hashtbl.add recorded name (ref []);
    experiment_order := name :: !experiment_order
  end

(* Record [name -> value] under the current experiment.  Repeated names
   (the same case measured at several sizes) get occurrence suffixes:
   name, name#2, name#3, ... in recording order, so entries stay stable
   across runs.  NaN (a failed OLS fit) is dropped: JSON cannot carry it
   and bench_diff could not compare it. *)
let record name v =
  if not (Float.is_nan v) then begin
    if not (Hashtbl.mem recorded !current_experiment) then
      set_experiment !current_experiment;
    let cell = Hashtbl.find recorded !current_experiment in
    let rec fresh k =
      let candidate = if k = 1 then name else Printf.sprintf "%s#%d" name k in
      if List.mem_assoc candidate !cell then fresh (k + 1) else candidate
    in
    cell := (fresh 1, v) :: !cell
  end

let write_bench_json path =
  let module J = Ssd.Json in
  let experiments =
    List.rev_map
      (fun name ->
        let cell = Hashtbl.find recorded name in
        (name, J.Obj (List.rev_map (fun (k, v) -> (k, J.Float v)) !cell)))
      !experiment_order
  in
  let doc =
    J.Obj [ ("version", J.Int bench_version); ("experiments", J.Obj experiments) ]
  in
  let oc = open_out path in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d experiments)\n" path (List.length experiments)

(* [measure cases] runs each (name, thunk) under bechamel's monotonic
   clock and returns (name, ns/run) in input order.  Each estimate is
   also recorded for BENCH.json. *)
let measure ?(quota = 0.5) cases =
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) cases
  in
  let grouped = Test.make_grouped ~name:"g" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let res = Analyze.all ols Instance.monotonic_clock raw in
  List.map
    (fun (name, _) ->
      let key = "g/" ^ name in
      let est =
        match Hashtbl.find_opt res key with
        | Some o -> (
          match Analyze.OLS.estimates o with
          | Some (e :: _) -> e
          | _ -> nan)
        | None -> nan
      in
      record name est;
      (name, est))
    cases

(* One-shot wall-clock (seconds), minimum of [runs]. *)
let time_once ?(runs = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let ns_to_string ns =
  if Float.is_nan ns then "-"
  else if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let s_to_string s = ns_to_string (s *. 1e9)

(* Markdown-ish table printing. *)
let print_table ~title ~header rows =
  Printf.printf "\n### %s\n\n" title;
  let all = header :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  ignore all;
  let print_row row =
    print_string "| ";
    List.iter2 (fun w cell -> Printf.printf "%-*s | " w cell) widths row;
    print_newline ()
  in
  print_row header;
  print_string "|";
  List.iter (fun w -> print_string (String.make (w + 2) '-') ; print_string "|") widths;
  print_newline ();
  List.iter print_row rows

let section name = Printf.printf "\n## %s\n" name
