(* Benchmark harness: one experiment per entry in DESIGN.md's reconstructed
   evaluation index (the paper is a tutorial with no tables or figures of
   its own; see EXPERIMENTS.md).

   Usage:
     dune exec bench/main.exe            # all experiments, default sizes
     dune exec bench/main.exe -- e3 e7   # a subset
     dune exec bench/main.exe -- --full  # larger sizes *)

module Graph = Ssd.Graph
module Label = Ssd.Label
module Tree = Ssd.Tree
module Ra = Relstore.Ra
open Bench_util

let full = ref false

let scale xs small = if !full then xs else small

(* ------------------------------------------------------------------ *)
(* E1 — browsing: where is the string X?  (section 1.3 / section 4)    *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1 value/text indexes vs full scan (browsing queries, sec. 1.3)";
  let sizes = scale [ 100; 1000; 10000 ] [ 100; 1000; 5000 ] in
  let rows =
    List.map
      (fun n ->
        let db = Ssd_workload.Movies.generate ~seed:1 ~n_entries:n () in
        let needle = Label.Str (Printf.sprintf "Movie %d" (n / 2)) in
        let vidx, v_build = time_once (fun () -> Ssd_index.Value_index.build db) in
        let tidx, t_build = time_once (fun () -> Ssd_index.Text_index.build db) in
        let timings =
          measure
            [
              ("scan", fun () -> ignore (Ssd_index.Value_index.scan db needle));
              ("value-index", fun () -> ignore (Ssd_index.Value_index.find vidx needle));
              ("text-word", fun () -> ignore (Ssd_index.Text_index.find_word tidx "movie"));
              ("text-prefix", fun () -> ignore (Ssd_index.Text_index.find_prefix tidx "act"));
            ]
        in
        let t name = List.assoc name timings in
        let speedup = t "scan" /. t "value-index" in
        [
          string_of_int n;
          ns_to_string (t "scan");
          ns_to_string (t "value-index");
          ns_to_string (t "text-word");
          ns_to_string (t "text-prefix");
          Printf.sprintf "%.0fx" speedup;
          s_to_string v_build;
          s_to_string t_build;
        ])
      sizes
  in
  print_table ~title:"lookup of one string value"
    ~header:
      [ "entries"; "scan"; "value-idx"; "text-word"; "text-prefix"; "speedup"; "v-build"; "t-build" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2 — regular path expressions (section 3)                           *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2 regular path queries: derivatives vs NFA product; exact paths via indexes";
  let sizes = scale [ 1000; 5000; 20000 ] [ 500; 2000 ] in
  let regex_text = {| host.page.(link)*.title._ |} in
  let r = Ssd_automata.Regex.parse regex_text in
  let nfa = Ssd_automata.Nfa.of_regex r in
  let rows =
    List.map
      (fun n ->
        let g = Ssd_workload.Webgraph.generate ~seed:2 ~n_pages:n () in
        let dfa, dfa_build =
          time_once (fun () ->
              Ssd_automata.Dfa.minimize
                (Ssd_automata.Dfa.of_nfa ~alphabet:(Ssd_automata.Product.alphabet g) nfa))
        in
        let via_nfa = Ssd_automata.Product.accepting_nodes g nfa in
        assert (via_nfa = Ssd_automata.Product.accepting_nodes_dfa g dfa);
        let timings =
          measure ~quota:0.4
            [
              ("derivatives", fun () -> ignore (Ssd_automata.Product.accepting_nodes_deriv g r));
              ("nfa-product", fun () -> ignore (Ssd_automata.Product.accepting_nodes g nfa));
              ("dfa-product", fun () -> ignore (Ssd_automata.Product.accepting_nodes_dfa g dfa));
            ]
        in
        let t name = List.assoc name timings in
        [
          string_of_int n;
          string_of_int (List.length via_nfa);
          ns_to_string (t "nfa-product");
          ns_to_string (t "derivatives");
          ns_to_string (t "dfa-product");
          s_to_string dfa_build;
          Printf.sprintf "%.1fx" (t "nfa-product" /. t "dfa-product");
        ])
      sizes
  in
  print_table ~title:(Printf.sprintf "cyclic web graph, query %s" (String.trim regex_text))
    ~header:[ "pages"; "answers"; "nfa"; "deriv"; "min-dfa"; "dfa-build"; "nfa/dfa" ]
    rows;
  (* Exact literal paths: traversal vs path index vs dataguide. *)
  let sizes = scale [ 1000; 10000 ] [ 500; 2000 ] in
  let path = [ Label.Sym "entry"; Label.Sym "movie"; Label.Sym "title" ] in
  let rows =
    List.map
      (fun n ->
        let db = Ssd_workload.Movies.generate ~seed:3 ~n_entries:n () in
        let pidx, p_build = time_once (fun () -> Ssd_index.Path_index.build ~depth:4 db) in
        let guide, g_build = time_once (fun () -> Ssd_schema.Dataguide.build db) in
        let timings =
          measure
            [
              ("traverse", fun () -> ignore (Ssd_index.Path_index.traverse db path));
              ("path-index", fun () -> ignore (Ssd_index.Path_index.find pidx path));
              ("dataguide", fun () -> ignore (Ssd_schema.Dataguide.find guide path));
            ]
        in
        let t name = List.assoc name timings in
        [
          string_of_int n;
          ns_to_string (t "traverse");
          ns_to_string (t "path-index");
          ns_to_string (t "dataguide");
          s_to_string p_build;
          s_to_string g_build;
        ])
      sizes
  in
  print_table ~title:"exact path entry.movie.title"
    ~header:[ "entries"; "traverse"; "path-idx"; "dataguide"; "pidx-build"; "guide-build" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 — the relational strategy: graph datalog (section 3)             *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3 recursive datalog over the triple encoding vs direct product";
  let sizes = scale [ 2000; 8000; 20000 ] [ 1000; 4000 ] in
  (* Descendants in a deep taxonomy: recursion depth = tree depth, which
     is where semi-naive evaluation pays off over naive re-derivation. *)
  let program =
    Relstore.Datalog.parse
      {| desc(?T)   :- root(?R), edge(?R, taxon, ?T).
         desc(?C)   :- desc(?T), edge(?T, child, ?C).
         answer(?N) :- desc(?T), edge(?T, name, ?N). |}
  in
  let nfa = Ssd_automata.Nfa.of_string "taxon.(child)*.name" in
  let rows =
    List.map
      (fun n ->
        let g = Ssd_workload.Biodb.generate ~seed:4 ~n_taxa:n () in
        let edb = Relstore.Triple.edb g in
        let semi = Relstore.Datalog.query ~edb program "answer" in
        let direct = Ssd_automata.Product.accepting_nodes g nfa in
        assert (List.length semi = List.length direct);
        let timings =
          measure ~quota:0.4
            [
              ("datalog-semi-naive", fun () -> ignore (Relstore.Datalog.eval ~edb program));
              ("datalog-naive", fun () -> ignore (Relstore.Datalog.eval_naive ~edb program));
              ("direct-product", fun () -> ignore (Ssd_automata.Product.accepting_nodes g nfa));
            ]
        in
        let t name = List.assoc name timings in
        [
          string_of_int n;
          string_of_int (List.length semi);
          ns_to_string (t "datalog-naive");
          ns_to_string (t "datalog-semi-naive");
          ns_to_string (t "direct-product");
          Printf.sprintf "%.1fx" (t "datalog-naive" /. t "datalog-semi-naive");
        ])
      sizes
  in
  print_table ~title:"taxonomy descendants, three strategies"
    ~header:[ "taxa"; "answers"; "naive"; "semi-naive"; "product"; "naive/semi" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4 — structural recursion on cyclic data (section 3)                *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4 deep restructuring: sfun bulk semantics vs direct transformation";
  let sizes = scale [ 500; 2000; 8000 ] [ 200; 1000 ] in
  let relabel_q = Unql.Parser.parse (Unql.Restructure.As_query.relabel ~from_:"movie" ~to_:"film") in
  let delete_q = Unql.Parser.parse (Unql.Restructure.As_query.delete ~label:"budget") in
  let collapse_q = Unql.Parser.parse (Unql.Restructure.As_query.collapse ~label:"credit") in
  let movie = Label.Sym "movie" and film = Label.Sym "film" in
  let rows =
    List.map
      (fun n ->
        let db = Ssd_workload.Movies.generate ~seed:5 ~n_entries:n () in
        (* agreement checked once per size *)
        let via_q = Unql.Eval.eval ~db relabel_q in
        let direct =
          Unql.Restructure.relabel (fun l -> if Label.equal l movie then film else l) db
        in
        assert (Ssd.Bisim.equal via_q direct);
        let timings =
          measure ~quota:0.4
            [
              ("sfun-relabel", fun () -> ignore (Unql.Eval.eval ~db relabel_q));
              ( "direct-relabel",
                fun () ->
                  ignore
                    (Unql.Restructure.relabel
                       (fun l -> if Label.equal l movie then film else l) db) );
              ("sfun-delete", fun () -> ignore (Unql.Eval.eval ~db delete_q));
              ( "direct-delete",
                fun () ->
                  ignore (Unql.Restructure.delete_edges (Label.equal (Label.Sym "budget")) db) );
              ("sfun-collapse", fun () -> ignore (Unql.Eval.eval ~db collapse_q));
            ]
        in
        let t name = List.assoc name timings in
        [
          string_of_int n;
          ns_to_string (t "sfun-relabel");
          ns_to_string (t "direct-relabel");
          ns_to_string (t "sfun-delete");
          ns_to_string (t "direct-delete");
          ns_to_string (t "sfun-collapse");
        ])
      sizes
  in
  print_table ~title:"relabel / delete / collapse on cyclic movie data"
    ~header:[ "entries"; "sfun-rel"; "direct-rel"; "sfun-del"; "direct-del"; "sfun-col" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5 — the three model variants (section 2)                           *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5 model variants: conversion round-trips";
  let sizes = scale [ 1000; 10000; 50000 ] [ 1000; 5000 ] in
  let rows =
    List.map
      (fun n ->
        let g = Ssd_workload.Randtree.generate ~seed:6 ~regularity:0.5 ~n_edges:n () in
        let t = Graph.to_tree g in
        let leafy = Ssd.Variant.leafy_of_v1 t in
        let nodelab = Ssd.Variant.nodelab_of_v1 ~root:(Label.Sym "root") t in
        (* Round-trip identities (the paper's "easy to define mappings"). *)
        assert (Ssd.Variant.Leafy.equal leafy (Ssd.Variant.leafy_of_v1 (Ssd.Variant.v1_of_leafy leafy)));
        assert (
          Ssd.Variant.Nodelab.equal nodelab
            (Ssd.Variant.nodelab_of_v1 ~root:(Label.Sym "root")
               (Ssd.Variant.v1_of_nodelab nodelab)));
        let timings =
          measure ~quota:0.3
            [
              ("to-leafy", fun () -> ignore (Ssd.Variant.leafy_of_v1 t));
              ("from-leafy", fun () -> ignore (Ssd.Variant.v1_of_leafy leafy));
              ("to-nodelab", fun () -> ignore (Ssd.Variant.nodelab_of_v1 ~root:(Label.Sym "root") t));
              ("from-nodelab", fun () -> ignore (Ssd.Variant.v1_of_nodelab nodelab));
            ]
        in
        let t' name = List.assoc name timings in
        [
          string_of_int n;
          ns_to_string (t' "to-leafy");
          ns_to_string (t' "from-leafy");
          ns_to_string (t' "to-nodelab");
          ns_to_string (t' "from-nodelab");
        ])
      sizes
  in
  print_table ~title:"edge-labeled <-> leaf-valued <-> node-labeled"
    ~header:[ "edges"; "to-v2"; "from-v2"; "to-v3"; "from-v3" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6 — object identity and bisimulation (section 2)                   *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6 bisimulation: value equality and minimization of shared data";
  let sizes = scale [ 200; 1000; 4000 ] [ 100; 500 ] in
  let rows =
    List.map
      (fun n ->
        let bib = Ssd_workload.Bibdb.generate ~seed:7 ~n_papers:n () in
        let g = Graph.eps_eliminate bib in
        let minimized, t_min = time_once (fun () -> Ssd.Bisim.minimize bib) in
        let (_ : bool), t_eq = time_once (fun () -> Ssd.Bisim.equal bib minimized) in
        let tree_size =
          (* size of the value (tree unfolding): DAG, so count via memo *)
          let memo = Hashtbl.create 64 in
          let rec sz u =
            match Hashtbl.find_opt memo u with
            | Some s -> s
            | None ->
              let s =
                List.fold_left (fun acc (_, v) -> acc + 1 + sz v) 0 (Graph.labeled_succ g u)
              in
              Hashtbl.add memo u s;
              s
          in
          sz (Graph.root g)
        in
        [
          string_of_int n;
          string_of_int (Graph.n_nodes g);
          string_of_int (Graph.n_nodes minimized);
          Printf.sprintf "%.2f" (float_of_int (Graph.n_nodes g) /. float_of_int (Graph.n_nodes minimized));
          string_of_int tree_size;
          s_to_string t_min;
          s_to_string t_eq;
        ])
      sizes
  in
  print_table ~title:"bibliography DAG with shared authors"
    ~header:[ "papers"; "nodes"; "min-nodes"; "ratio"; "tree-unfold-edges"; "minimize"; "bisim-eq" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7 — DataGuides and representative objects (section 5)              *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7 summary size vs data regularity (DataGuide, k-RO, inferred schema)";
  let n = if !full then 5000 else 2000 in
  let rows =
    List.map
      (fun regularity ->
        let g = Ssd_workload.Randtree.generate ~seed:8 ~regularity ~n_edges:n () in
        let guide, t_guide = time_once (fun () -> Ssd_schema.Dataguide.build g) in
        let ro2 = Ssd_schema.Ro.build ~k:2 g in
        let ro4 = Ssd_schema.Ro.build ~k:4 g in
        let schema_n = Ssd_schema.Infer.schema_size ~k:3 g in
        [
          Printf.sprintf "%.2f" regularity;
          string_of_int (Graph.n_nodes g);
          string_of_int (Ssd_schema.Dataguide.n_nodes guide);
          s_to_string t_guide;
          string_of_int (Ssd_schema.Ro.n_classes ro2);
          string_of_int (Ssd_schema.Ro.n_classes ro4);
          string_of_int schema_n;
        ])
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  print_table
    ~title:(Printf.sprintf "random trees, %d edges, regularity sweep" n)
    ~header:[ "regularity"; "nodes"; "guide"; "guide-t"; "2-RO"; "4-RO"; "schema(k=3)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8 — optimization ablation (section 4)                              *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8 optimization ablation: clause reordering, NFA caching, DataGuide use";
  let n = if !full then 5000 else 1500 in
  let db = Ssd_workload.Movies.generate ~seed:9 ~n_entries:n () in
  let guide, _ = time_once ~runs:1 (fun () -> Ssd_schema.Dataguide.build db) in
  (* A query whose conditions can move before an expensive regex step. *)
  let q =
    Unql.Parser.parse
      {| select {hit: {title: t, year: y}}
         where {entry.movie: \m} <- DB,
               {year.\y} <- m,
               {title: \t} <- m,
               {<cast.(credit)?.actors>.\a} <- m,
               y > 2010,
               startswith(a, "Lauren") |}
  in
  let opts ?(reorder = true) ?(cache = true) ?guide () =
    { Unql.Eval.default_options with reorder_clauses = reorder; cache_nfa = cache; dataguide = guide }
  in
  let timings =
    measure ~quota:0.6
      [
        ("all-on", fun () -> ignore (Unql.Eval.eval ~options:(opts ~guide ()) ~db q));
        ("no-guide", fun () -> ignore (Unql.Eval.eval ~options:(opts ()) ~db q));
        ("no-reorder", fun () -> ignore (Unql.Eval.eval ~options:(opts ~reorder:false ()) ~db q));
        ("no-nfa-cache", fun () -> ignore (Unql.Eval.eval ~options:(opts ~cache:false ()) ~db q));
        ( "none",
          fun () ->
            ignore (Unql.Eval.eval ~options:(opts ~reorder:false ~cache:false ()) ~db q) );
      ]
  in
  print_table ~title:(Printf.sprintf "select with regex + conditions, %d entries" n)
    ~header:[ "configuration"; "time" ]
    (List.map (fun (name, t) -> [ name; ns_to_string t ]) timings);
  (* DataGuide pruning of impossible paths. *)
  let dead = Unql.Parser.parse {| select t where {entry.movie.nosuchlabel: \t} <- DB |} in
  let _, pruned = Unql.Optimize.prune_with_guide guide dead in
  Printf.printf "\nimpossible-path selects pruned by the guide: %d (of 1)\n" pruned;
  (* Automaton sizes before/after minimization. *)
  let alphabet =
    Graph.fold_labeled_edges (fun acc _ l _ -> l :: acc) [] (Graph.eps_eliminate db)
    |> List.sort_uniq Label.compare
  in
  List.iter
    (fun (text, nfa_states, dfa_states) ->
      Printf.printf "regex %-40s NFA states %3d -> min-DFA states %d\n" text nfa_states
        dfa_states)
    (Unql.Optimize.automaton_sizes ~alphabet q)

(* ------------------------------------------------------------------ *)
(* E9 — query decomposition across sites (section 4)                   *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9 decomposed evaluation: sites sweep (Suciu VLDB'96)";
  let n = if !full then 10000 else 3000 in
  let g = Ssd_workload.Webgraph.generate ~seed:10 ~n_pages:n () in
  let nfa = Ssd_automata.Nfa.of_string "host.page.(link)*.title._" in
  let central = Ssd_automata.Product.accepting_nodes g nfa in
  let rows =
    List.map
      (fun (k, random) ->
        let partition =
          if random then Ssd_dist.Decompose.partition_random ~seed:1 ~k g
          else Ssd_dist.Decompose.partition_bfs ~k g
        in
        let answers, stats = Ssd_dist.Decompose.eval g partition nfa in
        assert (answers = central);
        [
          string_of_int k;
          (if random then "random" else "bfs");
          string_of_int stats.Ssd_dist.Decompose.cross_edges;
          string_of_int stats.Ssd_dist.Decompose.rounds;
          string_of_int stats.Ssd_dist.Decompose.messages;
          string_of_int (Array.fold_left max 0 stats.Ssd_dist.Decompose.local_work);
          string_of_int stats.Ssd_dist.Decompose.sequential_work;
          Printf.sprintf "%.2f"
            (float_of_int stats.Ssd_dist.Decompose.sequential_work
            /. float_of_int stats.Ssd_dist.Decompose.makespan);
        ])
      [ (1, false); (2, false); (4, false); (8, false); (16, false); (4, true); (16, true) ]
  in
  print_table
    ~title:(Printf.sprintf "web graph %d pages, multi-round decomposition" n)
    ~header:
      [ "sites"; "partition"; "cross-edges"; "rounds"; "messages"; "max-site"; "seq-work"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10 — relational data through the model (sections 1.2 / 2)          *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10 relational encoding: SQL-shaped query in RA vs UnQL on encoded data";
  let sizes = scale [ 200; 1000; 5000 ] [ 100; 500 ] in
  let make_db n =
    let customers =
      {
        Ssd.Encode.rel_name = "customer";
        attrs = [ "cid"; "name"; "city" ];
        rows =
          List.init n (fun i ->
              [
                Label.Int i;
                Label.Str (Printf.sprintf "Customer %d" i);
                Label.Str (Printf.sprintf "City %d" (i mod 10));
              ]);
      }
    in
    let orders =
      {
        Ssd.Encode.rel_name = "order";
        attrs = [ "oid"; "cid"; "amount" ];
        rows =
          List.init (3 * n) (fun i ->
              [ Label.Int i; Label.Int (i mod n); Label.Int (10 + (i * 7 mod 990)) ]);
      }
    in
    (customers, orders)
  in
  let rows =
    List.map
      (fun n ->
        let customers, orders = make_db n in
        let rel_c = Relstore.Relation.of_rows customers.Ssd.Encode.attrs
            (List.map Array.of_list customers.Ssd.Encode.rows)
        and rel_o = Relstore.Relation.of_rows orders.Ssd.Encode.attrs
            (List.map Array.of_list orders.Ssd.Encode.rows) in
        let tree = Ssd.Encode.tree_of_database [ customers; orders ] in
        let db = Graph.of_tree tree in
        let q =
          Unql.Parser.parse
            {| select {hit: {name: nm, amount: a}}
               where {order.tuple: \o} <- DB,
                     {amount.\a} <- o, {cid.\c} <- o,
                     {customer.tuple: \cu} <- DB,
                     {cid.\c2} <- cu, {name.\nm} <- cu,
                     c = c2, a > 900 |}
        in
        let ra () =
          let big = Ra.select (fun _ -> true) rel_o in
          ignore big;
          let sel = Ra.select (fun row -> Label.compare row.(2) (Label.Int 900) > 0) rel_o in
          Ra.project [ "name"; "amount" ] (Ra.join sel rel_c)
        in
        let ra_result = ra () in
        let unql_result = Unql.Eval.eval ~db q in
        let unql_rows = List.length (Graph.labeled_succ unql_result (Graph.root unql_result)) in
        let timings =
          measure ~quota:0.4
            [ ("relational-algebra", fun () -> ignore (ra ())); ("unql-on-encoding", fun () -> ignore (Unql.Eval.eval ~db q)) ]
        in
        let t name = List.assoc name timings in
        [
          string_of_int n;
          string_of_int (Relstore.Relation.cardinality ra_result);
          string_of_int unql_rows;
          ns_to_string (t "relational-algebra");
          ns_to_string (t "unql-on-encoding");
        ])
      sizes
  in
  print_table ~title:"join + selection + projection, both strategies"
    ~header:[ "customers"; "ra-rows"; "unql-rows"; "ra"; "unql" ]
    rows

(* ------------------------------------------------------------------ *)
(* E11 — disk layout and clustering (section 4, direct representation)  *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11 storage: codec size; clustering vs page faults (sec. 4)";
  let n = if !full then 20000 else 5000 in
  let datasets =
    [
      ("movies", Ssd_workload.Movies.generate ~seed:11 ~n_entries:(n / 10) ());
      ("biodb", Ssd_workload.Biodb.generate ~seed:11 ~n_taxa:(n / 4) ());
      ("web", Ssd_workload.Webgraph.generate ~seed:11 ~n_pages:(n / 5) ());
    ]
  in
  let rows =
    List.map
      (fun (name, g) ->
        let size = Ssd_storage.Codec.encoded_size g in
        let _, t_enc = time_once (fun () -> Ssd_storage.Codec.encode g) in
        let data = Ssd_storage.Codec.encode g in
        let _, t_dec = time_once (fun () -> Ssd_storage.Codec.decode data) in
        [
          name;
          string_of_int (Graph.n_nodes g);
          string_of_int (Graph.n_edges g);
          string_of_int size;
          Printf.sprintf "%.1f" (float_of_int size /. float_of_int (Graph.n_edges g));
          s_to_string t_enc;
          s_to_string t_dec;
        ])
      datasets
  in
  print_table ~title:"binary codec"
    ~header:[ "dataset"; "nodes"; "edges"; "bytes"; "B/edge"; "encode"; "decode" ]
    rows;
  (* Clustering: path-shaped workload over the deep taxonomy. *)
  let g = Ssd_workload.Biodb.generate ~seed:12 ~n_taxa:n () in
  let walks = Ssd_storage.Pager.random_walks ~seed:13 ~n_walks:(n / 4) ~depth:16 g in
  let rows =
    List.concat_map
      (fun clustering ->
        List.map
          (fun buffer ->
            let t = Ssd_storage.Pager.layout clustering ~page_capacity:64 g in
            let s = Ssd_storage.Pager.replay t ~buffer_pages:buffer walks in
            [
              Ssd_storage.Pager.clustering_name clustering;
              string_of_int buffer;
              string_of_int s.Ssd_storage.Pager.accesses;
              string_of_int s.Ssd_storage.Pager.faults;
              Printf.sprintf "%.1f%%"
                (100. *. float_of_int s.Ssd_storage.Pager.faults
                /. float_of_int s.Ssd_storage.Pager.accesses);
            ])
          [ 4; 16 ])
      [ Ssd_storage.Pager.Dfs; Ssd_storage.Pager.Bfs; Ssd_storage.Pager.Insertion;
        Ssd_storage.Pager.Scatter 7 ]
  in
  print_table
    ~title:
      (Printf.sprintf "LRU page faults, taxonomy %d taxa, 64 nodes/page, random root walks" n)
    ~header:[ "clustering"; "buffer"; "accesses"; "faults"; "fault-rate" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12 — one query, four languages (section 3's survey, quantified)     *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12 the same query in UnQL, Lorel and datalog (+ WebSQL on web data)";
  let sizes = scale [ 1000; 5000 ] [ 500; 2000 ] in
  let actor = "Humphrey Bogart 0" in
  let unql_q =
    Unql.Parser.parse
      (Printf.sprintf
         {| select {t: \t}
            where {<entry.movie>: \m} <- DB,
                  {<cast._*.%S>} <- m,
                  {title.\t} <- m |}
         actor)
  in
  let lorel_q =
    Printf.sprintf {| select X.title from DB.entry.movie X where X.cast.# = %S |} actor
  in
  let datalog_q =
    Relstore.Datalog.parse
      (Printf.sprintf
         {| mcast(?M, ?C) :- edge(?E, movie, ?M), edge(?M, cast, ?C).
            mcast(?M, ?D) :- mcast(?M, ?C), edge(?C, ?L, ?D).
            hit(?T) :- mcast(?M, ?C), edge(?C, %S, ?X),
                       edge(?M, title, ?TN), edge(?TN, ?T, ?L2). |}
         actor)
  in
  let rows =
    List.map
      (fun n ->
        let db = Ssd_workload.Movies.generate ~seed:12 ~n_entries:n () in
        let edb = Relstore.Triple.edb db in
        let unql_result = Unql.Eval.eval ~db unql_q in
        let count_unql =
          List.length (Graph.labeled_succ unql_result (Graph.root unql_result))
        in
        let lorel_result = Lorel.Eval.run ~db lorel_q in
        let count_lorel =
          List.length (Graph.labeled_succ lorel_result (Graph.root lorel_result))
        in
        let count_datalog = List.length (Relstore.Datalog.query ~edb datalog_q "hit") in
        assert (count_unql = count_lorel && count_lorel = count_datalog);
        let timings =
          measure ~quota:0.4
            [
              ("unql", fun () -> ignore (Unql.Eval.eval ~db unql_q));
              ("lorel", fun () -> ignore (Lorel.Eval.run ~db lorel_q));
              ("datalog", fun () -> ignore (Relstore.Datalog.query ~edb datalog_q "hit"));
            ]
        in
        let t name = List.assoc name timings in
        [
          string_of_int n;
          string_of_int count_unql;
          ns_to_string (t "unql");
          ns_to_string (t "lorel");
          ns_to_string (t "datalog");
        ])
      sizes
  in
  print_table
    ~title:(Printf.sprintf "movies with actor %S: titles, three languages agree" actor)
    ~header:[ "entries"; "answers"; "unql"; "lorel"; "datalog" ]
    rows;
  (* WebSQL vs the generic automaton product on web-shaped data. *)
  let n = if !full then 5000 else 1500 in
  let web = Ssd_workload.Webgraph.generate ~seed:13 ~n_pages:n () in
  let w = Websql.Web.of_graph web in
  let start_url = "http://host0.example/p0" in
  let websql_q =
    Printf.sprintf {| SELECT d.url FROM DOCUMENT d SUCH THAT %S (-> | =>)* d |} start_url
  in
  let start = Option.get (Websql.Web.by_url w start_url) in
  let count_websql = Relstore.Relation.cardinality (Websql.Eval.run ~db:web websql_q) in
  let timings =
    measure ~quota:0.4
      [
        ("websql", fun () -> ignore (Websql.Eval.run ~db:web websql_q));
        ( "automata-product",
          fun () ->
            ignore
              (Ssd_automata.Product.accepting_nodes_from web
                 (Ssd_automata.Nfa.of_string "(link)*")
                 ~starts:[ start ]) );
      ]
  in
  print_table
    ~title:
      (Printf.sprintf "web reachability from %s (%d pages reachable of %d)" start_url
         count_websql n)
    ~header:[ "evaluator"; "time" ]
    (List.map (fun (name, t) -> [ name; ns_to_string t ]) timings)

(* ------------------------------------------------------------------ *)
(* E13 — plan/result cache on a repeated-query workload               *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13 plan/result cache: repeated query workload, cache on vs off";
  let sizes = scale [ 1000; 5000 ] [ 500; 2000 ] in
  let queries =
    List.map Unql.Parser.parse
      [
        {| select {title: \t} where {entry.movie.title: \t} <- DB |};
        {| select {hit: \t}
           where {<entry.movie>: \m} <- DB,
                 {<cast._*."Humphrey Bogart 0">} <- m,
                 {title.\t} <- m |};
        {| select {year: \y} where {entry.movie.year.\y} <- DB |};
      ]
  in
  let rows =
    List.map
      (fun n ->
        let db = Ssd_workload.Movies.generate ~seed:14 ~n_entries:n () in
        let cache = Unql.Cache.create ~capacity:64 () in
        (* The cache must be invisible up to bisimulation. *)
        List.iter
          (fun q ->
            assert (Ssd.Bisim.equal (Unql.Cache.eval ~cache ~db q) (Unql.Eval.eval ~db q)))
          queries;
        let run_workload eval = List.iter (fun q -> ignore (eval q)) queries in
        let timings =
          measure ~quota:0.4
            [
              ("cache-off", fun () -> run_workload (fun q -> Unql.Eval.eval ~db q));
              ("cache-on", fun () -> run_workload (fun q -> Unql.Cache.eval ~cache ~db q));
            ]
        in
        let t name = List.assoc name timings in
        let s = Unql.Cache.stats cache in
        let lookups = s.Unql.Cache.hits + s.Unql.Cache.misses in
        [
          string_of_int n;
          ns_to_string (t "cache-off");
          ns_to_string (t "cache-on");
          Printf.sprintf "%.0fx" (t "cache-off" /. t "cache-on");
          Printf.sprintf "%d/%d (%.1f%%)" s.Unql.Cache.hits lookups
            (100. *. float_of_int s.Unql.Cache.hits /. float_of_int (max 1 lookups));
        ])
      sizes
  in
  print_table ~title:"repeated 3-query workload (movies data)"
    ~header:[ "entries"; "cache-off"; "cache-on"; "speedup"; "hits/lookups" ]
    rows;
  (* Updates change the graph fingerprint, so a cached result is never
     served for the mutated database; [invalidate] reclaims stale entries. *)
  let db = Ssd_workload.Movies.generate ~seed:14 ~n_entries:200 () in
  let cache = Unql.Cache.create ~capacity:64 () in
  let q = List.hd queries in
  ignore (Unql.Cache.eval ~cache ~db q);
  ignore (Unql.Cache.eval ~cache ~db q);
  let db' = Lorel.Update.run ~db {| insert DB.entry := {seen: true} |} in
  let before = (Unql.Cache.stats cache).Unql.Cache.misses in
  ignore (Unql.Cache.eval ~cache ~db:db' q);
  let after = (Unql.Cache.stats cache).Unql.Cache.misses in
  Printf.printf
    "\nafter an update the lookup was a %s; invalidate dropped %d stale entries\n"
    (if after > before then "miss (fingerprint changed, as required)" else "HIT (BUG)")
    (Unql.Cache.invalidate cache db)

(* ------------------------------------------------------------------ *)
(* E14 — lint-informed dead-path pruning on irregular web data         *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14 static dead-path pruning: lint-informed vs blind evaluation";
  let sizes = scale [ 2000; 8000 ] [ 500; 2000 ] in
  (* A workload with a regex-path select that can never match (the
     webgraph has no [movie] edges): blind evaluation still explores the
     (link)* product; the analyzer proves the product empty against the
     DataGuide and pruning replaces the select by [{}].  Guide-based
     literal-path pruning (E8's [prune_with_guide]) cannot see through
     the regex step, so it keeps the dead select. *)
  let live =
    Unql.Parser.parse {| select {u: \t} where {<host.page.(link)*.url>: \t} <- DB |}
  in
  let dead =
    Unql.Parser.parse
      {| select {m: \t} where {<host.page.(link)*.movie.title>: \t} <- DB |}
  in
  let q = Unql.Ast.Union (live, dead) in
  let rows =
    List.map
      (fun n ->
        let db = Ssd_workload.Webgraph.generate ~seed:14 ~n_pages:n () in
        let guide = Ssd_schema.Dataguide.build db in
        let target = Ssd_lint.Guide guide in
        let q', lint_pruned = Ssd_lint.prune target q in
        let _, blind_pruned = Unql.Optimize.prune_with_guide guide q in
        (* pruning must be invisible up to bisimulation *)
        assert (Ssd.Bisim.equal (Unql.Eval.eval ~db q) (Unql.Eval.eval ~db q'));
        let timings =
          measure ~quota:0.4
            [
              ("blind", fun () -> ignore (Unql.Eval.eval ~db q));
              ( "lint+prune+eval",
                fun () ->
                  let q', _ = Ssd_lint.prune target q in
                  ignore (Unql.Eval.eval ~db q') );
              ("lint-only", fun () -> ignore (Ssd_lint.prune target q));
            ]
        in
        let t name = List.assoc name timings in
        [
          string_of_int n;
          ns_to_string (t "blind");
          ns_to_string (t "lint+prune+eval");
          ns_to_string (t "lint-only");
          Printf.sprintf "%d vs %d" lint_pruned blind_pruned;
          Printf.sprintf "%.1fx" (t "blind" /. t "lint+prune+eval");
        ])
      sizes
  in
  print_table
    ~title:
      "union of a live and a dead regex-path select (webgraph; guide built once, \
       analysis re-run per evaluation)"
    ~header:
      [ "pages"; "blind eval"; "lint+prune+eval"; "lint alone"; "pruned lint/blind";
        "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* E15 — fault-tolerant distributed evaluation                         *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15 fault tolerance: message loss, crashes, backoff, budgets";
  let n = if !full then 5000 else 1500 in
  let g = Ssd_workload.Webgraph.generate ~seed:15 ~n_pages:n () in
  let nfa = Ssd_automata.Nfa.of_string "host.page.(link)*.title._" in
  let partition = Ssd_dist.Decompose.partition_bfs ~k:4 g in
  let central = Ssd_automata.Product.accepting_nodes g nfa in
  let faulty_run ?budget spec =
    Ssd_dist.Decompose.run ~plan:(Ssd_fault.Plan.parse spec) ?budget g partition nfa
  in
  let verdict = function
    | Ssd.Budget.Complete a -> if a = central then "complete" else "WRONG"
    | Ssd.Budget.Partial (a, why) ->
      Printf.sprintf "partial/%s (%d/%d)"
        (Ssd.Budget.exhaustion_to_string why)
        (List.length a) (List.length central)
  in
  let open Ssd_dist.Decompose in
  (* 1. Loss sweep: the answer never changes; only rounds and retry
     traffic grow with the drop rate. *)
  let rows =
    List.map
      (fun drop ->
        let outcome, s = faulty_run (Printf.sprintf "seed:1,drop:%g" drop) in
        [
          Printf.sprintf "%g" drop;
          string_of_int s.rounds;
          string_of_int s.messages;
          string_of_int s.retries;
          string_of_int s.dropped;
          Printf.sprintf "%.2fx"
            (float_of_int (s.messages + s.retries) /. float_of_int (max 1 s.messages));
          verdict outcome;
        ])
      [ 0.; 0.1; 0.3; 0.5; 0.7 ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "drop-rate sweep (web graph %d pages, 4 sites, seed 1; overhead = \
          transmissions/messages)" n)
    ~header:[ "drop"; "rounds"; "messages"; "retries"; "dropped"; "overhead"; "answer" ]
    rows;
  (* 2. Crash/recovery: work since the last checkpoint is lost and
     re-derived; a denser checkpoint interval bounds the waste. *)
  let rows =
    List.map
      (fun (crashes, ckpt) ->
        let spec =
          "seed:2,drop:0.1,ckpt:" ^ string_of_int ckpt
          ^ String.concat ""
              (List.map (fun (s, r) -> Printf.sprintf ",crash:%d@%d+2" s r) crashes)
        in
        let outcome, s = faulty_run spec in
        [
          string_of_int (List.length crashes);
          string_of_int ckpt;
          string_of_int s.rounds;
          string_of_int s.recoveries;
          string_of_int s.wasted_work;
          string_of_int s.checkpoints;
          verdict outcome;
        ])
      [
        ([], 1);
        ([ (1, 3) ], 1);
        ([ (1, 3) ], 4);
        ([ (1, 3); (2, 5) ], 1);
        ([ (1, 3); (2, 5) ], 4);
        ([ (0, 2); (1, 3); (2, 5) ], 4);
      ]
  in
  print_table
    ~title:"crash schedule sweep (drop 0.1 throughout; wasted = re-derived pairs)"
    ~header:[ "crashes"; "ckpt-every"; "rounds"; "recoveries"; "wasted"; "ckpts"; "answer" ]
    rows;
  (* 3. Retransmission policy: exponential backoff trades rounds for
     retry traffic against a fixed timer. *)
  let rows =
    List.map
      (fun (label, spec) ->
        let outcome, s = faulty_run ("seed:3,drop:0.3," ^ spec) in
        [
          label;
          string_of_int s.rounds;
          string_of_int s.retries;
          Printf.sprintf "%.2fx"
            (float_of_int (s.messages + s.retries) /. float_of_int (max 1 s.messages));
          verdict outcome;
        ])
      [
        ("exponential", "backoff:exp");
        ("fixed@1", "backoff:fixed@1");
        ("fixed@4", "backoff:fixed@4");
      ]
  in
  print_table ~title:"retransmission policy under drop 0.3"
    ~header:[ "backoff"; "rounds"; "retries"; "overhead"; "answer" ]
    rows;
  (* 4. Budgeted evaluation: the partial answer is a sound, growing
     lower bound of the complete one. *)
  let rows =
    List.map
      (fun steps ->
        let budget = Ssd.Budget.create ~max_steps:steps () in
        let outcome, s = faulty_run ~budget "seed:4,drop:0.1" in
        let answers =
          match outcome with Ssd.Budget.Complete a | Ssd.Budget.Partial (a, _) -> a
        in
        assert (List.for_all (fun u -> List.mem u central) answers);
        [
          string_of_int steps;
          string_of_int s.rounds;
          Printf.sprintf "%d/%d" (List.length answers) (List.length central);
          verdict outcome;
        ])
      [ 2000; 12000; 12500; 13000; 20000 ]
  in
  print_table
    ~title:"step-budget sweep (drop 0.1; every partial answer checked against central)"
    ~header:[ "max-steps"; "rounds"; "answers"; "status" ]
    rows

(* ------------------------------------------------------------------ *)
(* E16 — observability: tracing overhead and a trace-driven finding     *)
(* ------------------------------------------------------------------ *)

let e16 () =
  section "E16 observability: tracing overhead; where dist wall-clock goes under loss";
  let module T = Ssd_obs.Trace in
  (* 1. Overhead: e13's repeated-query workload with tracing off vs on.
     The off case is the cost everyone pays (one ref read per
     instrumentation point); the on case additionally allocates span
     nodes and instants. *)
  let n = if !full then 5000 else 1500 in
  let db = Ssd_workload.Movies.generate ~seed:14 ~n_entries:n () in
  let queries =
    List.map Unql.Parser.parse
      [
        {| select {title: \t} where {entry.movie.title: \t} <- DB |};
        {| select {hit: \t}
           where {<entry.movie>: \m} <- DB,
                 {<cast._*."Humphrey Bogart 0">} <- m,
                 {title.\t} <- m |};
        {| select {year: \y} where {entry.movie.year.\y} <- DB |};
      ]
  in
  let run_workload () = List.iter (fun q -> ignore (Unql.Eval.eval ~db q)) queries in
  T.disable ();
  T.clear ();
  let timings =
    measure ~quota:0.6
      [
        ("tracing-off", run_workload);
        ( "tracing-on",
          fun () ->
            T.enable ();
            T.clear ();
            run_workload ();
            T.disable () );
      ]
  in
  let t name = List.assoc name timings in
  let overhead_pct = 100. *. (t "tracing-on" -. t "tracing-off") /. t "tracing-off" in
  record "tracing_overhead_pct" overhead_pct;
  print_table
    ~title:(Printf.sprintf "e13 workload (%d entries), tracing off vs on" n)
    ~header:[ "tracing"; "ns/workload" ]
    (List.map (fun (name, v) -> [ name; ns_to_string v ]) timings);
  Printf.printf "\ntracing overhead: %.1f%% (target < 10%%)\n" overhead_pct;
  (* 2. Trace-driven finding: at drop 0.2, what share of the dist
     wall-clock sits in rounds that are doing retransmission work?  Read
     straight off the trace: dist.round spans vs dist.retransmit
     instants falling inside them. *)
  let g = Ssd_workload.Webgraph.generate ~seed:15 ~n_pages:n () in
  let nfa = Ssd_automata.Nfa.of_string "host.page.(link)*.title._" in
  let partition = Ssd_dist.Decompose.partition_bfs ~k:4 g in
  T.enable ();
  T.clear ();
  ignore
    (Ssd_dist.Decompose.run ~plan:(Ssd_fault.Plan.parse "seed:1,drop:0.2") g partition
       nfa);
  let retrans =
    List.filter (fun i -> i.T.i_name = "dist.retransmit") (T.instants ())
  in
  let rounds =
    List.concat_map
      (fun s -> if s.T.name = "dist.run" then s.T.children else [])
      (T.spans ())
    |> List.filter (fun s -> s.T.name = "dist.round")
  in
  let total_round_ns = List.fold_left (fun a s -> a +. s.T.dur_ns) 0. rounds in
  let in_span s i =
    i.T.i_ts_ns >= s.T.start_ns && i.T.i_ts_ns <= s.T.start_ns +. s.T.dur_ns
  in
  let retrans_rounds = List.filter (fun s -> List.exists (in_span s) retrans) rounds in
  let retrans_ns = List.fold_left (fun a s -> a +. s.T.dur_ns) 0. retrans_rounds in
  let share = 100. *. retrans_ns /. Float.max 1. total_round_ns in
  T.disable ();
  T.clear ();
  record "retransmit_rounds" (float_of_int (List.length retrans_rounds));
  record "rounds" (float_of_int (List.length rounds));
  record "retransmit_wallclock_pct" share;
  Printf.printf
    "\ndist drop=0.2 (web graph %d pages, 4 sites), read off the trace:\n\
     rounds: %d total, %d with retransmissions (%d retransmit events)\n\
     share of dist wall-clock in retransmitting rounds: %.1f%%\n"
    n (List.length rounds)
    (List.length retrans_rounds)
    (List.length retrans) share

(* ------------------------------------------------------------------ *)
(* E17 — multicore scaling of the four parallel paths                  *)
(* ------------------------------------------------------------------ *)

let e17 () =
  section "E17 parallel evaluation: jobs sweep over the four pooled paths";
  let module Pool = Ssd_par.Pool in
  let jobs_sweep = [ 1; 2; 4; 8 ] in
  let n = if !full then 3000 else 800 in
  let web = Ssd_workload.Webgraph.generate ~seed:17 ~n_pages:n () in
  let movies = Ssd_workload.Movies.generate ~seed:17 ~n_entries:n () in
  let nfa = Ssd_automata.Nfa.of_string "host.page.(link)*.title._" in
  let unql_q =
    Unql.Parser.parse
      {| select {t: \T} where {<host.page.(link)*.title>: \T} <- DB |}
  in
  let edges =
    Graph.fold_labeled_edges (fun acc s _ d -> [ Label.int s; Label.int d ] :: acc) [] web
  in
  let edb = [ ("e", edges); ("start", [ [ Label.int (Graph.root web) ] ]) ] in
  let datalog_p =
    Relstore.Datalog.parse
      {| reach(?X) :- start(?X).  reach(?Y) :- reach(?X), e(?X, ?Y). |}
  in
  let paths =
    [
      ("product", fun () -> ignore (Ssd_automata.Product.accepting_nodes web nfa));
      ("unql_select", fun () -> ignore (Unql.Eval.eval ~db:web unql_q));
      ("datalog", fun () -> ignore (Relstore.Datalog.eval ~edb datalog_p));
      ("index_build", fun () -> ignore (Ssd_index.Value_index.build movies));
    ]
  in
  (* Equivalence first: every path's answer at every jobs value must
     equal the sequential one — the scaling numbers below are only
     meaningful because of this. *)
  Pool.set_default_jobs 1;
  let baseline =
    ( Ssd_automata.Product.accepting_nodes web nfa,
      Graph.to_string (Unql.Eval.eval ~db:web unql_q),
      Relstore.Datalog.eval ~edb datalog_p )
  in
  List.iter
    (fun jobs ->
      Pool.set_default_jobs jobs;
      let here =
        ( Ssd_automata.Product.accepting_nodes web nfa,
          Graph.to_string (Unql.Eval.eval ~db:web unql_q),
          Relstore.Datalog.eval ~edb datalog_p )
      in
      if here <> baseline then failwith (Printf.sprintf "jobs=%d answers differ!" jobs))
    jobs_sweep;
  let rows =
    List.map
      (fun (name, f) ->
        let timings =
          measure ~quota:0.4
            (List.map
               (fun jobs ->
                 ( Printf.sprintf "%s_jobs%d" name jobs,
                   fun () ->
                     Pool.set_default_jobs jobs;
                     f () ))
               jobs_sweep)
        in
        let t j = List.assoc (Printf.sprintf "%s_jobs%d" name j) timings in
        record (Printf.sprintf "%s_speedup_x4" name) (t 1 /. t 4);
        name :: List.map (fun j -> ns_to_string (t j)) jobs_sweep
        @ [ Printf.sprintf "%.2fx" (t 1 /. t 4) ])
      paths
  in
  Pool.set_default_jobs 1;
  print_table
    ~title:
      (Printf.sprintf
         "answers verified identical for all jobs; web graph %d pages (%d cores here)"
         n (Domain.recommended_domain_count ()))
    ~header:([ "path" ] @ List.map (Printf.sprintf "jobs=%d ns/op") jobs_sweep
             @ [ "speedup@4" ])
    rows

(* ------------------------------------------------------------------ *)
(* E18 — serving: open-loop latency; shed vs collapse under overload   *)
(* ------------------------------------------------------------------ *)

let e18 () =
  section "E18 serve: open-loop request latency; admission control vs queue collapse";
  let module Engine = Ssd_serve.Engine in
  let module Proto = Ssd_serve.Proto in
  let n_entries = if !full then 2000 else 500 in
  let n_reqs = if !full then 400 else 200 in
  let db = Ssd_workload.Movies.generate ~seed:18 ~n_entries () in
  let q = {| select {t: \T} where {entry.movie.title: \T} <- DB |} in
  (* cache off: every request pays the evaluation, like distinct tenants *)
  let req = "QUERY cache=off " ^ q in
  let percentile a p =
    let a = Array.of_list a in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then nan
    else a.(max 0 (min (n - 1) (int_of_float (ceil (p /. 100. *. float n)) - 1)))
  in
  (* Open-loop generator in virtual time: request i arrives at i*ia
     regardless of the server (that is what makes overload overload);
     the single-server loop handles them in order, so
     latency_i = finish_i - arrival_i includes queueing delay.  The
     backlog the transport would report is the arrivals not yet served
     when request i starts. *)
  let open_loop ~config ~ia_ns =
    let engine = Engine.create ~config (Engine.store ~db ()) in
    let all_lat = ref [] and admit_lat = ref [] in
    let n_shed = ref 0 and n_partial = ref 0 and n_err = ref 0 in
    let now = ref 0. in
    for i = 0 to n_reqs - 1 do
      let arrive = float_of_int i *. ia_ns in
      let start = Float.max !now arrive in
      let arrived = min n_reqs (1 + int_of_float (start /. ia_ns)) in
      let queued = max 0 (arrived - i - 1) in
      let t0 = Ssd_obs.Clock.now_ns () in
      let resp, _ = Engine.handle ~queued engine req in
      let dt = Ssd_obs.Clock.now_ns () -. t0 in
      (* every answer, under any load, must be a well-formed frame *)
      (match Proto.parse_response (Proto.render_response resp) 0 with
      | Result.Ok _ -> ()
      | Result.Error _ -> incr n_err);
      let finish = start +. dt in
      let lat = finish -. arrive in
      all_lat := lat :: !all_lat;
      (match resp.Proto.status with
      | Proto.Shed -> incr n_shed
      | Proto.Partial ->
        incr n_partial;
        admit_lat := lat :: !admit_lat
      | Proto.Complete -> admit_lat := lat :: !admit_lat
      | Proto.Error | Proto.Delta -> incr n_err);
      now := finish
    done;
    (!all_lat, !admit_lat, !n_shed, !n_partial, !n_err)
  in
  (* calibrate the service time on a warm engine *)
  let warm = Engine.create (Engine.store ~db ()) in
  ignore (Engine.handle warm req);
  let _, svc_s = time_once (fun () -> ignore (Engine.handle warm req)) in
  let svc_ns = Float.max 1e4 (svc_s *. 1e9) in
  let admission =
    {
      Engine.default_config with
      Engine.shed_at = 12;
      pressure_at = 4;
      pressure_max_steps = 200;
    }
  in
  let no_admission =
    { Engine.default_config with Engine.shed_at = max_int; pressure_at = max_int }
  in
  (* A: under capacity (arrivals at half the service rate) *)
  let lat_a, _, shed_a, _, err_a = open_loop ~config:admission ~ia_ns:(2. *. svc_ns) in
  (* B: 8x overload, admission on — degrade into partial, then shed *)
  let lat_b, admit_b, shed_b, partial_b, err_b =
    open_loop ~config:admission ~ia_ns:(svc_ns /. 8.)
  in
  (* C: the same overload with admission off — the queue collapses *)
  let lat_c, _, shed_c, _, err_c = open_loop ~config:no_admission ~ia_ns:(svc_ns /. 3.) in
  if err_a + err_b + err_c > 0 then
    failwith (Printf.sprintf "e18: %d protocol errors under load!" (err_a + err_b + err_c));
  if shed_a > 0 then failwith "e18: shed under capacity!";
  if shed_c > 0 then failwith "e18: shed with admission off!";
  record "serve_p50_ns" (percentile lat_a 50.);
  record "serve_p99_ns" (percentile lat_a 99.);
  record "serve_over_shed" (float_of_int shed_b);
  record "serve_over_partial" (float_of_int partial_b);
  record "serve_over_p99_admit_ns" (percentile admit_b 99.);
  record "serve_over_p99_collapse_ns" (percentile lat_c 99.);
  print_table
    ~title:
      (Printf.sprintf
         "open loop, %d requests, service time %s; overload = 8x (admission) / 3x \
          (collapse) arrival rate"
         n_reqs (ns_to_string svc_ns))
    ~header:[ "phase"; "p50"; "p99"; "shed"; "partial" ]
    [
      [ "under capacity"; ns_to_string (percentile lat_a 50.);
        ns_to_string (percentile lat_a 99.); string_of_int shed_a; "0" ];
      [ "overload+admission"; ns_to_string (percentile lat_b 50.);
        ns_to_string (percentile lat_b 99.); string_of_int shed_b;
        string_of_int partial_b ];
      [ "overload, no admission"; ns_to_string (percentile lat_c 50.);
        ns_to_string (percentile lat_c 99.); string_of_int shed_c; "0" ];
    ];
  Printf.printf
    "(admitted p99 under overload %s vs collapsed p99 %s: shedding converts \
     queueing delay into typed refusals)\n"
    (ns_to_string (percentile admit_b 99.))
    (ns_to_string (percentile lat_c 99.))

(* ------------------------------------------------------------------ *)
(* E19 — statistics-driven planner: adversarial conjunct order         *)
(* ------------------------------------------------------------------ *)

(* A haystack: [hay] fans out to [k] distinct labels (a cheap but WIDE
   generator) and a [deep] chain of [n] nodes hides one [needle] at the
   bottom (an expensive SINGLETON regex generator).  With the wide
   generator written first, nested-loop evaluation re-runs the
   full-traversal regex once per hay binding — k * O(n) work.  The
   cardinality-annotated DataGuide tells the planner the regex yields
   one binding, so it moves that generator first: O(n) + k. *)
let e19 () =
  section "E19 planner: conjunct order chosen from DataGuide cardinalities";
  let k = if !full then 96 else 64 in
  let n = if !full then 4000 else 1500 in
  let b = Graph.Builder.create () in
  let root = Graph.Builder.add_node b in
  Graph.Builder.set_root b root;
  let hay = Graph.Builder.add_node b in
  Graph.Builder.add_edge b root (Label.sym "hay") hay;
  for i = 0 to k - 1 do
    let leaf = Graph.Builder.add_node b in
    Graph.Builder.add_edge b hay (Label.int i) leaf
  done;
  let deep = ref root in
  for _ = 1 to n do
    let next = Graph.Builder.add_node b in
    Graph.Builder.add_edge b !deep (Label.sym "deep") next;
    deep := next
  done;
  Graph.Builder.add_edge b !deep (Label.sym "needle") (Graph.Builder.add_node b);
  let db = Graph.Builder.finish b in
  let q =
    Unql.Parser.parse
      {| select {r: u} where {hay.\x: \t} <- DB, {<_*.needle>: \u} <- DB |}
  in
  let ann, t_stats = time_once (fun () -> Ssd_schema.Annotated.build db) in
  let planned, t_plan =
    time_once (fun () -> Unql.Optimize.reorder_generators ann q)
  in
  (* the rewrite must be answer-invariant before it may be fast *)
  let raw = { Unql.Eval.default_options with reorder_clauses = false } in
  if
    not
      (Ssd.Bisim.equal
         (Unql.Eval.eval ~options:raw ~db q)
         (Unql.Eval.eval ~options:raw ~db planned))
  then failwith "e19: planned answer differs from syntactic answer!";
  let timings =
    measure ~quota:0.4
      [
        ("syntactic", fun () -> ignore (Unql.Eval.eval ~options:raw ~db q));
        ("planned", fun () -> ignore (Unql.Eval.eval ~options:raw ~db planned));
      ]
  in
  let t name = List.assoc name timings in
  let speedup = t "syntactic" /. t "planned" in
  record "planner_syntax_ns" (t "syntactic");
  record "planner_planned_ns" (t "planned");
  record "planner_speedup" speedup;
  print_table
    ~title:
      (Printf.sprintf
         "answers bisimilar; %d-wide hay conjunct vs 1-result needle regex over a \
          %d-node chain"
         k n)
    ~header:[ "order"; "ns/op"; "speedup" ]
    [
      [ "as written (wide first)"; ns_to_string (t "syntactic"); "1.00x" ];
      [ "planned (singleton first)"; ns_to_string (t "planned");
        Printf.sprintf "%.2fx" speedup ];
    ];
  Printf.printf
    "(one-off planning cost: statistics %s + reorder %s; plans are cached per \
     (db, query) in Unql.Cache)\n"
    (s_to_string t_stats) (s_to_string t_plan)

(* ------------------------------------------------------------------ *)
(* E20 — persistent store: cold open vs rebuild, recovery, commits     *)
(* ------------------------------------------------------------------ *)

let e20 () =
  section "E20 store: cold open vs index rebuild, recovery cost, WAL commit latency";
  let module Store = Ssd_store.Store in
  let n = scale 400 150 in
  let db = Ssd_workload.Movies.generate ~seed:5 ~n_entries:n () in
  let db' = Ssd_workload.Movies.generate ~seed:6 ~n_entries:n () in
  let dir = Filename.temp_file "ssd_bench_store" "" in
  Sys.remove dir;
  let vfs = Ssd_store.Vfs.real dir in
  Store.close (Store.create vfs db);
  let counters =
    List.map Ssd_obs.Metrics.counter
      [ "index.value.builds"; "index.text.builds"; "index.path.builds" ]
  in
  let snapshot () = List.map Ssd_obs.Metrics.value counters in
  let entry_movie_title = List.map Label.sym [ "entry"; "movie"; "title" ] in
  (* Cold open, then the figure-1 browsing workload straight off the
     checkpointed segments — any index rebuild is a failure. *)
  let before = snapshot () in
  let (st, titles, movies), t_cold =
    time_once ~runs:1 (fun () ->
        let st = Store.open_ ~checkpoint_every:8 vfs in
        let titles =
          match Ssd_index.Path_index.find (Store.path_index st) entry_movie_title with
          | Some nodes -> nodes
          | None -> Ssd_index.Path_index.traverse (Store.graph st) entry_movie_title
        in
        let movies =
          Ssd_index.Value_index.find_nodes (Store.value_index st) (Label.sym "movie")
        in
        (st, titles, movies))
  in
  (* The untouched segments stay lazy; touching them now must still
     deserialize, not rebuild. *)
  ignore (Store.dataguide st);
  ignore (Store.text_index st);
  if snapshot () <> before then failwith "e20: cold open rebuilt an index!";
  if titles = [] || movies = [] then failwith "e20: cold open answered nothing!";
  if Store.fingerprint st <> Store.fingerprint_graph db then
    failwith "e20: cold open is not byte-identical!";
  (* The alternative a store-less start pays: rebuild everything. *)
  let g = Store.graph st in
  let _, t_rebuild =
    time_once (fun () ->
        ignore (Ssd_index.Value_index.build g);
        ignore (Ssd_index.Text_index.build g);
        ignore (Ssd_index.Path_index.build ~depth:3 g);
        ignore (Ssd_schema.Dataguide.build g))
  in
  (* Durable commit latency: alternate two versions; every commit diffs
     pages, appends to the WAL and fsyncs before returning. *)
  let flip = ref false in
  let timings =
    measure ~quota:0.4
      [
        ("commit", fun () ->
            flip := not !flip;
            Store.commit st (if !flip then db' else db));
      ]
  in
  let t_commit = List.assoc "commit" timings in
  (* Recovery: leave the handle un-checkpointed (the kill -9 shape) and
     time the ARIES open that replays the log. *)
  Store.commit st db;
  Store.commit st db';
  let st2, t_recover = time_once ~runs:1 (fun () -> Store.open_ vfs) in
  let r = Store.recovery st2 in
  if r.Store.was_clean then failwith "e20: expected recovery after an unclean stop!";
  Store.close st2;
  record "store_cold_open_ns" (t_cold *. 1e9);
  record "store_rebuild_ns" (t_rebuild *. 1e9);
  record "store_commit_ns" t_commit;
  record "store_recovery_ns" (t_recover *. 1e9);
  print_table
    ~title:
      (Printf.sprintf
         "%d-entry movie db; store holds dict+graph+value+text+path+guide segments" n)
    ~header:[ "operation"; "time" ]
    [
      [ "cold open + browse (segments)"; s_to_string t_cold ];
      [ "index rebuild from graph"; s_to_string t_rebuild ];
      [ "durable commit (WAL+fsync)"; ns_to_string t_commit ];
      [ "recovery open (redo log)"; s_to_string t_recover ];
    ];
  Printf.printf "(recovery replayed %d committed txns, discarded %d torn bytes)\n"
    r.Store.recovered_txns r.Store.torn_bytes;
  Array.iter
    (fun f ->
      try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* E21 — observability: scrape under load, event-log overhead          *)
(* ------------------------------------------------------------------ *)

let e21 () =
  section "E21 observability: /metrics scrape under load; event-log overhead";
  let module Engine = Ssd_serve.Engine in
  let module Metrics = Ssd_obs.Metrics in
  let module Export = Ssd_obs.Export in
  let module Events = Ssd_obs.Events in
  let n_entries = scale 2000 500 in
  let n_reqs = scale 600 300 in
  let db = Ssd_workload.Movies.generate ~seed:21 ~n_entries () in
  let q = {| select {t: \T} where {entry.movie.title: \T} <- DB |} in
  let req = "QUERY cache=off " ^ q in
  let percentile a p =
    let a = Array.of_list a in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then nan
    else a.(max 0 (min (n - 1) (int_of_float (ceil (p /. 100. *. float n)) - 1)))
  in
  (* One scrape: snapshot the whole default registry (well populated by
     this point in the bench run) and render the exposition. *)
  let scrape () = Export.openmetrics (Metrics.snapshot Metrics.default) in
  (match Export.parse (scrape ()) with
  | Result.Ok _ -> ()
  | Result.Error e -> failwith ("e21: scrape does not re-parse: " ^ e));
  let timings = measure ~quota:0.3 [ ("scrape", fun () -> ignore (scrape ())) ] in
  let t_scrape = List.assoc "scrape" timings in
  (* Request latency with and without a concurrent scraper.  The scraper
     polls at ~100 Hz — two orders of magnitude above the 1 Hz a real
     Prometheus would use — so the measured impact is a hard ceiling for
     the deployment target (<5% p99 at 1 Hz). *)
  let run_phase ~config ~scraping =
    let engine = Engine.create ~config (Engine.store ~db ()) in
    (* long enough warm-up to get allocation and lazy-init effects out of
       the measured window — the phases are compared against each other *)
    for _ = 1 to 30 do
      ignore (Engine.handle engine req)
    done;
    (* level the GC between phases: without this, garbage left by the
       preceding phase (or by bechamel) lands in this phase's tail *)
    Gc.compact ();
    let stop = Atomic.make false in
    let scraper =
      if scraping then
        Some
          (Domain.spawn (fun () ->
               let n = ref 0 in
               while not (Atomic.get stop) do
                 ignore (scrape ());
                 incr n;
                 Unix.sleepf 0.01
               done;
               !n))
      else None
    in
    let lat = ref [] in
    for _ = 1 to n_reqs do
      let t0 = Ssd_obs.Clock.now_ns () in
      ignore (Engine.handle engine req);
      lat := (Ssd_obs.Clock.now_ns () -. t0) :: !lat
    done;
    Atomic.set stop true;
    let scrapes = match scraper with Some d -> Domain.join d | None -> 0 in
    (!lat, scrapes)
  in
  let quiet = { Engine.default_config with Engine.slow_query_ms = 1e9 } in
  (* throwaway phase: the first batch after process start (and after
     bechamel's churn) carries one-time tail noise whoever runs it *)
  ignore (run_phase ~config:quiet ~scraping:false);
  let lat_base, _ = run_phase ~config:quiet ~scraping:false in
  let lat_scraped, n_scrapes = run_phase ~config:quiet ~scraping:true in
  if n_scrapes = 0 then failwith "e21: the scraper never ran!";
  (* Slow-query telemetry on every request: threshold 0 makes each query
     pay the full event path (plan, cardinality estimate, ring emit). *)
  let chatty = { Engine.default_config with Engine.slow_query_ms = 0. } in
  let lat_events, _ = run_phase ~config:chatty ~scraping:false in
  let impact p a b =
    let pa = percentile a p and pb = percentile b p in
    (pb -. pa) /. pa *. 100.
  in
  let scrape_impact = impact 99. lat_base lat_scraped in
  let events_impact = impact 50. lat_base lat_events in
  let events_impact_p99 = impact 99. lat_base lat_events in
  (* The deployment target is a 1 Hz scrape; its CPU duty cycle is one
     scrape per second.  That is the machine-independent overhead bound —
     the concurrent-domain numbers above it also carry this host's
     scheduler and stop-the-world noise (pronounced on few-core boxes). *)
  let duty_1hz_pct = t_scrape /. 1e9 *. 100. in
  if duty_1hz_pct > 5. then
    failwith
      (Printf.sprintf "e21: a 1 Hz scrape costs %.2f%% of a core (target <5%%)!"
         duty_1hz_pct);
  (* Raw emit cost, ring only (no sink): the price of leaving events on. *)
  let log = Events.create ~registry:(Metrics.create ()) () in
  let fields = [ ("tenant", Ssd.Json.String "bench"); ("i", Ssd.Json.Int 0) ] in
  let emit_timings =
    measure ~quota:0.3 [ ("emit", fun () -> Events.emit log "bench" fields) ]
  in
  let t_emit = List.assoc "emit" emit_timings in
  record "admin_scrape_ns" t_scrape;
  record "admin_scrape_duty_1hz_pct" duty_1hz_pct;
  record "events_emit_ns" t_emit;
  record "events_slowlog_p50_impact_pct" events_impact;
  print_table
    ~title:
      (Printf.sprintf
         "%d requests against a %d-entry db; scraper at ~100 Hz (%d scrapes during \
          the run)"
         n_reqs n_entries n_scrapes)
    ~header:[ "measurement"; "value" ]
    [
      [ "one /metrics scrape (snapshot+render)"; ns_to_string t_scrape ];
      [ "CPU duty of a 1 Hz scrape"; Printf.sprintf "%.4f%%" duty_1hz_pct ];
      [ "request p99, no scraper"; ns_to_string (percentile lat_base 99.) ];
      [ "request p99, scraper at ~100 Hz"; ns_to_string (percentile lat_scraped 99.) ];
      [ "p99 interference at 100 Hz (host-dependent)";
        Printf.sprintf "%+.1f%%" scrape_impact ];
      [ "slow-query telemetry p50 / p99 impact";
        Printf.sprintf "%+.1f%% / %+.1f%%" events_impact events_impact_p99 ];
      [ "one event emit (ring only)"; ns_to_string t_emit ];
    ]

(* ------------------------------------------------------------------ *)
(* E22 — incremental maintenance: 1-edge update vs full rebuild        *)
(* ------------------------------------------------------------------ *)

let e22 () =
  section "E22 incremental maintenance: delta-driven updates vs full rebuild";
  let module State = Ssd_incr.State in
  let module Delta = Ssd_incr.Delta in
  let depth = 3 in
  let names = Ssd_store.Store.all_indexes in
  (* One inserted edge: a fresh string-labeled leaf hung off the root.
     Node ids are preserved (import_into), so the delta is monotone and
     the maintainer must take the insert-only fast path. *)
  let add_edit g k =
    let b = Graph.Builder.create () in
    let (_ : int) = Graph.import_into b g in
    Graph.Builder.set_root b (Graph.root g);
    let v = Graph.Builder.add_node b in
    Graph.Builder.add_edge b (Graph.root g) (Label.str (Printf.sprintf "edit %d" k)) v;
    Graph.Builder.finish b
  in
  let k_steps = scale 128 64 in
  let sizes = scale [ 1000; 4000; 16000 ] [ 500; 2000 ] in
  let builds g =
    ( Ssd_index.Value_index.build g,
      Ssd_index.Text_index.build g,
      Ssd_index.Path_index.build ~depth g,
      Ssd_schema.Dataguide.build g )
  in
  let last_speedup = ref nan in
  let rows =
    List.map
      (fun n ->
        let g0 = Ssd_workload.Webgraph.generate ~seed:22 ~n_pages:n () in
        (* a chain of k_steps single-edge versions, deltas precomputed *)
        let steps =
          let rec go g k acc =
            if k = k_steps then List.rev acc
            else begin
              let g' = add_edit g k in
              let d = Delta.diff g g' in
              if not (Delta.monotone d) || Delta.n_added d <> 1 then
                failwith "e22: the 1-edge insert is not a monotone 1-edge delta!";
              go g' (k + 1) ((g', d) :: acc)
            end
          in
          go g0 0 []
        in
        let final = fst (List.nth steps (k_steps - 1)) in
        let v0, t0, p0, d0 = builds g0 in
        let vb = Ssd_index.Value_index.to_bytes v0
        and tb = Ssd_index.Text_index.to_bytes t0
        and pb = Ssd_index.Path_index.to_bytes p0
        and db = Ssd_schema.Dataguide.to_bytes d0 in
        (* The value and path indexes are mutated in place by [advance],
           so every timed pass adopts fresh deserialized copies; the
           adoption happens outside the timed window. *)
        let fresh_state () =
          State.create ~path_depth:depth ~names
            ~vindex:(Ssd_index.Value_index.of_bytes vb)
            ~tindex:(Ssd_index.Text_index.of_bytes tb)
            ~pindex:(Ssd_index.Path_index.of_bytes pb)
            ~guide:(Ssd_schema.Dataguide.of_bytes db)
            g0
        in
        let advance_pass st =
          List.iter
            (fun (g', d) ->
              match State.advance st g' d with
              | State.Fast_path -> ()
              | State.Rebuilt -> failwith "e22: a 1-edge insert fell back to rebuild!")
            steps
        in
        (* Differential sanity: after the whole chain, every maintained
           structure is byte-identical to a fresh build of the final
           graph. *)
        let check =
          let st = fresh_state () in
          advance_pass st;
          let vf, tf, pf, df = builds final in
          Bytes.equal (Ssd_index.Value_index.to_bytes (Option.get (State.value_index st)))
            (Ssd_index.Value_index.to_bytes vf)
          && Bytes.equal (Ssd_index.Text_index.to_bytes (Option.get (State.text_index st)))
               (Ssd_index.Text_index.to_bytes tf)
          && Bytes.equal (Ssd_index.Path_index.to_bytes (Option.get (State.path_index st)))
               (Ssd_index.Path_index.to_bytes pf)
          && Bytes.equal (Ssd_schema.Dataguide.to_bytes (Option.get (State.dataguide st)))
               (Ssd_schema.Dataguide.to_bytes df)
        in
        if not check then failwith "e22: maintained structures differ from fresh builds!";
        (* ns per 1-edge advance: one pass over the chain, best of 5 *)
        let t_advance =
          let best = ref infinity in
          for _ = 1 to 5 do
            let st = fresh_state () in
            let w0 = Unix.gettimeofday () in
            advance_pass st;
            let dt = Unix.gettimeofday () -. w0 in
            if dt < !best then best := dt
          done;
          !best /. float k_steps *. 1e9
        in
        (* what the store's commit path pays to find the delta, and what
           a maintenance-free engine pays instead of the advance *)
        let g1, _ = List.hd steps in
        let timings =
          measure ~quota:0.3
            [
              ("diff", fun () -> ignore (Delta.diff g0 g1));
              ("rebuild", fun () -> ignore (builds final));
            ]
        in
        let t_diff = List.assoc "diff" timings in
        let t_rebuild = List.assoc "rebuild" timings in
        let speedup = t_rebuild /. t_advance in
        last_speedup := speedup;
        record "incr_advance_1edge_ns" t_advance;
        record "incr_diff_ns" t_diff;
        record "incr_rebuild_ns" t_rebuild;
        record "incr_speedup" speedup;
        [
          string_of_int n;
          string_of_int (Graph.n_edges g0);
          ns_to_string t_advance;
          ns_to_string t_diff;
          ns_to_string t_rebuild;
          Printf.sprintf "%.0fx" speedup;
        ])
      sizes
  in
  print_table
    ~title:
      (Printf.sprintf
         "webgraph, 1-edge insert: incremental value+text+path+guide vs full rebuild \
          (%d-step chains)"
         k_steps)
    ~header:[ "pages"; "edges"; "advance"; "diff"; "rebuild"; "speedup" ]
    rows;
  (* The claim of the incremental plane: maintenance cost tracks the
     delta, not the database.  At the largest size the fast path must
     beat a full rebuild by an order of magnitude. *)
  if !last_speedup < 10. then
    failwith
      (Printf.sprintf "e22: incremental advance only %.1fx faster than rebuild (need 10x)!"
         !last_speedup)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20); ("e21", e21);
    ("e22", e22);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--full" then begin
          full := true;
          false
        end
        else true)
      args
  in
  let json_path = ref "BENCH.json" in
  let rec strip_json acc = function
    | "--json" :: path :: rest ->
      json_path := path;
      strip_json acc rest
    | a :: rest -> strip_json (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_json [] args in
  let selected = if args = [] then List.map fst experiments else args in
  Printf.printf "# Semistructured Data (PODS'97) — reconstructed evaluation\n";
  Printf.printf "(sizes: %s; see EXPERIMENTS.md for the experiment index)\n"
    (if !full then "full" else "default");
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        set_experiment name;
        f ()
      | None -> Printf.eprintf "unknown experiment %s\n" name)
    selected;
  write_bench_json !json_path
